//! The transformation cache v2: a byte-budgeted, single-flight sharded LRU
//! keyed by frame content hash or by quantized histogram signature.
//!
//! The expensive part of serving a frame is the *fit* (GHE solve, blend
//! search, piecewise-linear coarsening, range search); the *application* of
//! a fitted transform is one LUT pass plus the display models. Video traffic
//! is dominated by runs of identical or near-identical frames, so the engine
//! caches fits and replays them:
//!
//! * [`CacheMode::Exact`] keys on a 128-bit content hash of the frame (plus
//!   its shape and the quantized budget band). The stored frame bytes are
//!   verified on every hit, so a served hit is still a proof that the
//!   identical frame was fitted before — but the lookup itself never copies
//!   the pixel buffer.
//! * [`CacheMode::Approximate`] keys on the frame's quantized
//!   [`HistogramSignature`]. Near-identical frames (sensor noise, small
//!   motion) share a fit; the cached [`FrameTransform`] is re-applied to the
//!   actual frame, so distortion and power are still measured per frame —
//!   only the fitted curve is approximate.
//!
//! Both modes quantize the distortion budget into *bands*
//! ([`CacheConfig::budget_band_width`]): requests whose budgets fall into
//! the same band share entries, and a hit is only served when the cached
//! fit's *measured* distortion satisfies the requesting budget. A fit made
//! for a strict budget therefore serves looser budgets in its band for
//! free; a looser fit that fails the recheck is rejected, evicted, and
//! replaced by the refit.
//!
//! The store itself is a generic sharded LRU ([`ShardedLru`]): each shard is
//! an independent mutex around a hash map plus a recency index, bounded both
//! in entries and in resident bytes. A per-key single-flight table
//! ([`FlightTable`]) collapses N concurrent misses on the same key into one
//! fit plus N−1 waiters.

use std::collections::hash_map::RandomState;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hebs_analysis::{interleave, lock_healthy, LockClass, OrderedCondvar, OrderedMutex};

use hebs_core::{FrameTransform, ScalingOutcome};
use hebs_imaging::{GrayImage, Histogram, HistogramSignature, DEFAULT_SIGNATURE_RESOLUTION};

/// Default cap on resident cache bytes (64 MiB across all shards).
pub const DEFAULT_BYTE_BUDGET: usize = 64 << 20;

/// Default width of a distortion-budget band: budgets within the same
/// 1%-wide band share cache entries (guarded by a distortion recheck).
pub const DEFAULT_BUDGET_BAND_WIDTH: f64 = 0.01;

/// How cache keys are derived from frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Key on a 128-bit hash of the exact frame content, verified against
    /// the stored frame on every hit: hits replay the full outcome
    /// bit-identically. Wins on repeated frames (static scenes, UI, logo
    /// cards) and is always safe.
    Exact,
    /// Key on the quantized histogram signature: near-identical frames
    /// reuse the fitted transform, which is re-applied to each actual frame.
    /// Wins on noisy/slowly-moving video at a bounded approximation error.
    Approximate,
}

/// Configuration of the engine's transformation cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total number of cached fits across all shards.
    pub capacity: usize,
    /// Number of independently locked shards.
    pub shards: usize,
    /// Key derivation mode.
    pub mode: CacheMode,
    /// Quantization resolution of the histogram signature (only used by
    /// [`CacheMode::Approximate`]); see
    /// [`HistogramSignature::with_resolution`].
    pub signature_resolution: u8,
    /// Cap on resident bytes across all shards (each entry charges its
    /// stored pixels, displayed image and LUT); `None` means unbounded.
    /// Defaults to [`DEFAULT_BYTE_BUDGET`].
    pub byte_budget: Option<usize>,
    /// Width of a distortion-budget band. Requests whose budgets quantize
    /// to the same band share cache entries; a hit is only served when the
    /// cached fit's measured distortion satisfies the requesting budget.
    pub budget_band_width: f64,
    /// Optional time-to-live: entries older than this are treated as misses
    /// and dropped on lookup. `None` (the default) disables expiry.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 512,
            shards: 8,
            mode: CacheMode::Exact,
            signature_resolution: DEFAULT_SIGNATURE_RESOLUTION,
            byte_budget: Some(DEFAULT_BYTE_BUDGET),
            budget_band_width: DEFAULT_BUDGET_BAND_WIDTH,
            ttl: None,
        }
    }
}

impl CacheConfig {
    /// An exact-keyed cache with the default capacity.
    pub fn exact() -> Self {
        CacheConfig::default()
    }

    /// A signature-keyed cache with the default capacity and resolution.
    pub fn approximate() -> Self {
        CacheConfig {
            mode: CacheMode::Approximate,
            ..CacheConfig::default()
        }
    }

    /// Returns the configuration with a different total capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Returns the configuration with a different byte budget
    /// (`None` = unbounded).
    pub fn with_byte_budget(mut self, byte_budget: Option<usize>) -> Self {
        self.byte_budget = byte_budget;
        self
    }

    /// Returns the configuration with a different budget-band width.
    pub fn with_budget_band_width(mut self, width: f64) -> Self {
        self.budget_band_width = width;
        self
    }

    /// Returns the configuration with an entry time-to-live.
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }
}

/// Quantizes a distortion budget into its band index.
pub(crate) fn budget_band(max_distortion: f64, band_width: f64) -> u32 {
    (max_distortion / band_width).floor() as u32
}

// The 128-bit exact-key content hash lives in `hebs_imaging::frame_hash128`
// since the fused-ingest refactor: the serve path computes it inside
// `FrameIngest`'s single pass and hands the finished value to
// `ExactKey::of`, so the cache layer never walks a pixel buffer.

/// One stored entry: the value plus its recency tick, insertion generation
/// (see [`ShardedLru::reject`]), byte weight, owning tenant and insertion
/// time (for the optional TTL).
#[derive(Debug)]
struct Entry<V> {
    value: V,
    tick: u64,
    generation: u64,
    bytes: usize,
    tenant: u16,
    inserted: Instant,
}

/// One LRU shard: the stored entries plus a recency index, bounded both in
/// entries and in bytes (globally and per tenant).
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    recency: BTreeMap<u64, K>,
    tick: u64,
    generations: u64,
    capacity: usize,
    byte_capacity: usize,
    bytes: usize,
    /// Resident bytes charged per tenant (tenants with nothing resident
    /// are absent).
    tenant_bytes: HashMap<u16, usize>,
    /// This shard's slice of each tenant's byte partition; tenants without
    /// an entry are unbounded (subject only to the global caps).
    tenant_limits: HashMap<u16, usize>,
    ttl: Option<Duration>,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize, byte_capacity: usize, ttl: Option<Duration>) -> Self {
        Shard {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            generations: 0,
            capacity,
            byte_capacity,
            bytes: 0,
            tenant_bytes: HashMap::new(),
            tenant_limits: HashMap::new(),
            ttl,
        }
    }

    /// Resident bytes currently charged to `tenant` in this shard.
    fn tenant_charge(&self, tenant: u16) -> usize {
        self.tenant_bytes.get(&tenant).copied().unwrap_or(0)
    }

    /// Looks a key up and refreshes its recency, returning the value with
    /// its insertion generation. The recency tick only advances when the
    /// key is present, so miss traffic cannot inflate it.
    fn touch(&mut self, key: &K) -> Option<(V, u64)> {
        let expired = match (self.ttl, self.map.get(key)) {
            (_, None) => return None,
            (Some(ttl), Some(entry)) => entry.inserted.elapsed() >= ttl,
            (None, Some(_)) => false,
        };
        if expired {
            self.remove(key);
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(key).expect("entry checked present"); // lint: allow(no-unwrap) presence established by the expiry probe above
        let value = entry.value.clone(); // lint: allow(hot-path-alloc) -- hit path hands the Arc-backed entry out by refcount bump; no buffer is copied
        let generation = entry.generation;
        self.recency.remove(&entry.tick);
        entry.tick = tick;
        self.recency.insert(tick, key.clone()); // lint: allow(hot-path-alloc) -- relinking recency needs an owned key; keys are small fixed-size hash structs
        Some((value, generation))
    }

    /// Inserts an entry weighing `bytes` charged to `tenant`, evicting
    /// least-recently-used entries until the entry cap, the byte cap and
    /// the tenant's partition (when one is set) all hold. Eviction under a
    /// tenant's partition removes only *that tenant's* LRU entries, so one
    /// tenant's pressure never pushes another tenant's fits out. Returns
    /// whether the entry was admitted: an entry that exceeds the shard's
    /// whole byte budget (or the tenant's whole slice of it) is refused
    /// rather than thrashing the shard.
    fn insert(&mut self, key: K, value: V, bytes: usize, tenant: u16) -> bool {
        // A stale entry under the same key never survives the insert, even
        // when its replacement is refused as oversized.
        self.remove(&key);
        if bytes > self.byte_capacity {
            return false;
        }
        let tenant_limit = self.tenant_limits.get(&tenant).copied();
        if tenant_limit.is_some_and(|limit| bytes > limit) {
            return false;
        }
        // Under pressure, reclaim TTL-expired residents before evicting
        // live LRU victims: a cold expired entry is otherwise only dropped
        // when its own key happens to be probed again, and until then it
        // keeps charging the byte budget and pushing live fits out.
        if self.ttl.is_some()
            && (self.map.len() >= self.capacity
                || self.bytes.saturating_add(bytes) > self.byte_capacity)
        {
            self.reclaim_expired();
        }
        // Tenant partition: walk the recency index oldest-first, skipping
        // other tenants' entries, until this tenant's charge fits.
        if let Some(limit) = tenant_limit {
            while self.tenant_charge(tenant).saturating_add(bytes) > limit {
                let victim = self
                    .recency
                    .values()
                    .find(|key| self.map.get(*key).is_some_and(|e| e.tenant == tenant))
                    .cloned();
                let Some(victim) = victim else { break };
                self.remove(&victim);
            }
        }
        while !self.map.is_empty()
            && (self.map.len() >= self.capacity
                || self.bytes.saturating_add(bytes) > self.byte_capacity)
        {
            let Some((_, victim)) = self.recency.pop_first() else {
                break;
            };
            if let Some(evicted) = self.map.remove(&victim) {
                self.bytes -= evicted.bytes;
                self.discharge_tenant(evicted.tenant, evicted.bytes);
            }
        }
        self.tick += 1;
        self.generations += 1;
        let tick = self.tick;
        self.recency.insert(tick, key.clone()); // lint: allow(hot-path-alloc) -- miss-path insert owns its recency key; keys are small fixed-size hash structs
        self.map.insert(
            key,
            Entry {
                value,
                tick,
                generation: self.generations,
                bytes,
                tenant,
                inserted: Instant::now(),
            },
        );
        self.bytes += bytes;
        *self.tenant_bytes.entry(tenant).or_insert(0) += bytes;
        true
    }

    /// Releases `bytes` from `tenant`'s resident charge.
    fn discharge_tenant(&mut self, tenant: u16, bytes: usize) {
        if let Some(charge) = self.tenant_bytes.get_mut(&tenant) {
            *charge = charge.saturating_sub(bytes);
            if *charge == 0 {
                self.tenant_bytes.remove(&tenant);
            }
        }
    }

    /// Removes every resident entry whose TTL has lapsed (a full-shard
    /// sweep, only run from `insert` when eviction is otherwise needed).
    // lint: cold-path
    fn reclaim_expired(&mut self) {
        let Some(ttl) = self.ttl else { return };
        let expired: Vec<K> = self
            .map
            .iter()
            .filter(|(_, entry)| entry.inserted.elapsed() >= ttl)
            .map(|(key, _)| key.clone())
            .collect();
        for key in &expired {
            self.remove(key);
        }
    }

    /// Removes an entry, returning whether it was present.
    fn remove(&mut self, key: &K) -> bool {
        if let Some(entry) = self.map.remove(key) {
            self.recency.remove(&entry.tick);
            self.bytes -= entry.bytes;
            self.discharge_tenant(entry.tenant, entry.bytes);
            true
        } else {
            false
        }
    }

    /// Removes an entry only if it is still the generation the caller
    /// looked at, so a slow verifier never evicts a concurrently inserted
    /// fresh replacement.
    fn remove_generation(&mut self, key: &K, generation: u64) -> bool {
        if self
            .map
            .get(key)
            .is_some_and(|e| e.generation == generation)
        {
            self.remove(key)
        } else {
            false
        }
    }
}

/// A thread-safe LRU map split into independently locked shards, bounded
/// both in entries and in resident bytes.
///
/// Values are returned by clone, so `V` is typically an [`Arc`] or another
/// cheaply clonable handle. The hit/miss/rejection/coalesced counters are
/// global, lock-free, and carry *served* semantics: [`ShardedLru::get`]
/// counts a provisional hit or miss, which the caller corrects with
/// [`ShardedLru::reject`] (a hit whose value failed verification) or
/// [`ShardedLru::get_after_wait`] (a miss served by another thread's
/// concurrent insert), so the counters always describe what was actually
/// served rather than what the raw probes saw.
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<OrderedMutex<Shard<K, V>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    rejections: AtomicU64,
    coalesced: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache holding at most `capacity` entries split over
    /// `shards` independent locks, with no byte bound and no TTL.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is 0.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::bounded(capacity, shards, usize::MAX, None)
    }

    /// Creates a cache bounded in entries *and* bytes, with an optional
    /// entry TTL. Both budgets are partitioned exactly across shards:
    /// shards whose slice does not divide evenly get one unit more or less,
    /// but the totals never exceed the budgets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity`, `shards` or `byte_budget` is 0.
    pub fn bounded(
        capacity: usize,
        shards: usize,
        byte_budget: usize,
        ttl: Option<Duration>,
    ) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        assert!(shards > 0, "cache shard count must be nonzero");
        assert!(byte_budget > 0, "cache byte budget must be nonzero");
        let shards = shards.min(capacity);
        let base = capacity / shards;
        let remainder = capacity % shards;
        let byte_base = byte_budget / shards;
        let byte_remainder = byte_budget % shards;
        ShardedLru {
            shards: (0..shards)
                .map(|i| {
                    OrderedMutex::new(
                        LockClass::CacheShard,
                        Shard::new(
                            base + usize::from(i < remainder),
                            byte_base + usize::from(i < byte_remainder),
                            ttl,
                        ),
                    )
                })
                .collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &K) -> &OrderedMutex<Shard<K, V>> {
        let index = self.hasher.hash_one(key) as usize % self.shards.len();
        &self.shards[index]
    }

    /// Counts one poisoned-lock recovery (see `EngineStats::poison_recoveries`).
    fn note_poison(&self) {
        self.poison_recoveries.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
    }

    /// Poisoned-lock recoveries performed by this store's accessors.
    pub(crate) fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed) // ordering: advisory snapshot
    }

    /// Looks `key` up, refreshing its recency and counting a provisional
    /// hit or miss (see the type docs for how callers correct these).
    /// Returns the value with an opaque generation token identifying the
    /// exact insertion the caller saw, for use with [`ShardedLru::reject`].
    pub fn get(&self, key: &K) -> Option<(V, u64)> {
        let value = lock_healthy(self.shard_for(key).lock(), || self.note_poison()).touch(key);
        match &value {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed), // ordering: monotonic tally, nothing published
            None => self.misses.fetch_add(1, Ordering::Relaxed), // ordering: monotonic tally, nothing published
        };
        value
    }

    /// Re-probes `key` after waiting on another thread's in-flight insert
    /// for the same key. On success the caller's earlier counted miss is
    /// reclassified as a coalesced hit; on failure nothing is counted (the
    /// earlier miss stands).
    ///
    /// Must only be called after a counted miss ([`ShardedLru::get`]
    /// returned `None`, or a hit was [rejected](ShardedLru::reject)) for
    /// the same logical lookup, otherwise the counters drift.
    pub fn get_after_wait(&self, key: &K) -> Option<(V, u64)> {
        interleave::point("cache.get_after_wait");
        let value = lock_healthy(self.shard_for(key).lock(), || self.note_poison()).touch(key);
        if value.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
            self.misses.fetch_sub(1, Ordering::Relaxed); // ordering: reclassification tally, nothing published
            self.coalesced.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
        }
        value
    }

    /// Rejects a counted hit whose value failed the caller's verification
    /// (stored-frame mismatch or distortion over budget): the entry is
    /// removed so other workers stop paying for the known-bad value, and
    /// the hit is reclassified as a miss plus a rejection.
    ///
    /// `generation` is the token returned by the [`ShardedLru::get`] that
    /// produced the rejected value; the entry is only removed while it is
    /// still that insertion, so a slow verifier never evicts a fresh
    /// replacement another worker installed in the meantime.
    pub fn reject(&self, key: &K, generation: u64) {
        lock_healthy(self.shard_for(key).lock(), || self.note_poison())
            .remove_generation(key, generation);
        self.hits.fetch_sub(1, Ordering::Relaxed); // ordering: reclassification tally, nothing published
        self.misses.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
        self.rejections.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
    }

    /// Rejects a hit obtained from [`ShardedLru::get_after_wait`]: like
    /// [`ShardedLru::reject`], but also reverses the coalesced
    /// reclassification the successful re-probe made, so the lookup ends
    /// as a plain miss plus a rejection.
    pub fn reject_after_wait(&self, key: &K, generation: u64) {
        self.reject(key, generation);
        self.coalesced.fetch_sub(1, Ordering::Relaxed); // ordering: reclassification tally, nothing published
    }

    /// Inserts (or refreshes) an entry weighing `bytes`, evicting least
    /// recently used entries of the target shard until both the entry cap
    /// and the byte cap hold. Returns whether the entry was admitted (an
    /// entry larger than its shard's whole byte budget is refused).
    ///
    /// The entry is charged to tenant 0, which is unbounded unless a limit
    /// was set with [`ShardedLru::set_tenant_limit`] — single-tenant use
    /// behaves exactly as before tenant accounting existed.
    pub fn insert(&self, key: K, value: V, bytes: usize) -> bool {
        self.insert_for(0, key, value, bytes)
    }

    /// Inserts (or refreshes) an entry weighing `bytes` *charged to
    /// `tenant`*: like [`ShardedLru::insert`], but the entry additionally
    /// counts against the tenant's byte partition (see
    /// [`ShardedLru::set_tenant_limit`]). When the tenant is over its
    /// partition, only that tenant's least-recently-used entries are
    /// evicted to make room — other tenants' entries are untouched.
    pub fn insert_for(&self, tenant: u16, key: K, value: V, bytes: usize) -> bool {
        interleave::point("cache.insert_evict");
        lock_healthy(self.shard_for(&key).lock(), || self.note_poison())
            .insert(key, value, bytes, tenant)
    }

    /// Sets (or replaces) `tenant`'s byte partition, split exactly across
    /// shards like the global byte budget (shards whose slice does not
    /// divide evenly get one byte more or less). The cap applies from the
    /// next [`ShardedLru::insert_for`]; already-resident entries are not
    /// evicted retroactively. Tenants without a partition are unbounded.
    ///
    /// A partition much smaller than the shard count leaves some shards
    /// with a zero slice, whose inserts for this tenant are then refused —
    /// give every tenant at least a few KiB per shard.
    pub fn set_tenant_limit(&self, tenant: u16, byte_limit: usize) {
        let shards = self.shards.len();
        let base = byte_limit / shards;
        let remainder = byte_limit % shards;
        for (i, shard) in self.shards.iter().enumerate() {
            lock_healthy(shard.lock(), || self.note_poison())
                .tenant_limits
                .insert(tenant, base + usize::from(i < remainder));
        }
    }

    /// Resident bytes currently charged to `tenant` across all shards.
    pub fn tenant_bytes(&self, tenant: u16) -> usize {
        self.shards
            .iter()
            .map(|s| lock_healthy(s.lock(), || self.note_poison()).tenant_charge(tenant))
            .sum()
    }

    /// Number of entries currently cached (sums all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_healthy(s.lock(), || self.note_poison()).map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes currently charged across all shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_healthy(s.lock(), || self.note_poison()).bytes)
            .sum()
    }

    /// Number of lookups that were served from the cache (including
    /// coalesced hits, excluding rejected ones).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // ordering: advisory snapshot
    }

    /// Number of lookups that were not served from the cache (including
    /// rejected hits, excluding coalesced misses).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed) // ordering: advisory snapshot
    }

    /// Number of hits that were rejected by the caller's verification.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed) // ordering: advisory snapshot
    }

    /// Number of misses that were served by another thread's concurrent
    /// insert instead of a redundant computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed) // ordering: advisory snapshot
    }

    /// The `k` most recently used entries, newest first — what a snapshot
    /// spills so a restored engine starts with its hottest fits resident.
    /// Recency ticks are per shard, so the cross-shard merge is
    /// approximate, but each shard's own contribution is exactly its
    /// newest entries and the result never exceeds `k`.
    pub(crate) fn recent_entries(&self, k: usize) -> Vec<(K, V)> {
        if k == 0 {
            return Vec::new();
        }
        let mut ranked: Vec<(u64, K, V)> = Vec::new();
        for shard in &self.shards {
            let shard = lock_healthy(shard.lock(), || self.note_poison());
            for (&tick, key) in shard.recency.iter().rev().take(k) {
                if let Some(entry) = shard.map.get(key) {
                    ranked.push((tick, key.clone(), entry.value.clone()));
                }
            }
        }
        ranked.sort_by_key(|entry| std::cmp::Reverse(entry.0));
        ranked.truncate(k);
        ranked
            .into_iter()
            .map(|(_, key, value)| (key, value))
            .collect()
    }
}

/// One independently locked slice of a [`FlightTable`]: the keys currently
/// in flight plus the condvar their waiters park on.
#[derive(Debug)]
struct FlightShard<K> {
    inflight: OrderedMutex<HashSet<K>>,
    done: OrderedCondvar,
    poison_recoveries: AtomicU64,
}

impl<K> FlightShard<K> {
    /// Counts one poisoned-lock recovery (see `EngineStats::poison_recoveries`).
    fn note_poison(&self) {
        self.poison_recoveries.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
    }
}

/// A per-key single-flight table: the first thread to [`FlightTable::join`]
/// a key becomes the *leader* (and computes the value); threads joining
/// while the leader is in flight block on the shard's condvar and are told
/// they waited, so they can re-probe the cache instead of recomputing.
///
/// The table is sharded like the store it guards: misses on unrelated keys
/// hash to different shards and never contend on a common lock, so the
/// miss path has no global serialization point left.
#[derive(Debug)]
pub(crate) struct FlightTable<K> {
    shards: Vec<FlightShard<K>>,
    hasher: RandomState,
}

/// The outcome of joining a flight.
pub(crate) enum Flight<'a, K: Hash + Eq + Clone> {
    /// This thread owns the fit; the guard clears the in-flight marker and
    /// wakes waiters when dropped (including on panic or error).
    Leader(#[allow(dead_code)] FlightGuard<'a, K>),
    /// Another thread ran the fit while we waited; re-probe the cache.
    Waited,
}

/// RAII marker for flight leadership; see [`Flight::Leader`].
pub(crate) struct FlightGuard<'a, K: Hash + Eq + Clone> {
    shard: &'a FlightShard<K>,
    key: K,
}

impl<K: Hash + Eq + Clone> FlightTable<K> {
    /// Creates a table with `shards` independent locks (clamped to ≥ 1).
    pub(crate) fn new(shards: usize) -> Self {
        FlightTable {
            shards: (0..shards.max(1))
                .map(|_| FlightShard {
                    inflight: OrderedMutex::new(LockClass::FlightTable, HashSet::new()),
                    done: OrderedCondvar::new(),
                    poison_recoveries: AtomicU64::new(0),
                })
                .collect(),
            hasher: RandomState::new(),
        }
    }

    /// Joins the flight for `key`: returns leadership if no fit is in
    /// flight, otherwise blocks until the current leader finishes.
    pub(crate) fn join(&self, key: &K) -> Flight<'_, K> {
        let shard = &self.shards[self.hasher.hash_one(key) as usize % self.shards.len()];
        interleave::point("flight.join");
        let mut inflight = lock_healthy(shard.inflight.lock(), || shard.note_poison());
        // lint: allow(hot-path-alloc) -- the flight set owns the key marking the in-flight fit; keys are small fixed-size hash structs
        if inflight.insert(key.clone()) {
            return Flight::Leader(FlightGuard {
                shard,
                key: key.clone(), // lint: allow(hot-path-alloc) -- the leader guard owns the key so release can clear the flight; keys are small fixed-size hash structs
            });
        }
        while inflight.contains(key) {
            inflight = lock_healthy(shard.done.wait(inflight), || shard.note_poison());
            interleave::point("flight.woke");
        }
        Flight::Waited
    }

    /// Poisoned-lock recoveries performed by this table's accessors.
    pub(crate) fn poison_recoveries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.poison_recoveries.load(Ordering::Relaxed)) // ordering: advisory snapshot
            .sum()
    }
}

impl<K: Hash + Eq + Clone> Drop for FlightGuard<'_, K> {
    fn drop(&mut self) {
        interleave::point("flight.release");
        let mut inflight = lock_healthy(self.shard.inflight.lock(), || self.shard.note_poison());
        inflight.remove(&self.key);
        self.shard.done.notify_all();
    }
}

/// Exact-mode key: frame shape, 128-bit content hash, budget band, the
/// owning tenant, the content class the frame routed to and the class's
/// characteristic generation the fit was made under.
///
/// The hash is [`hebs_imaging::frame_hash128`], computed by the serve
/// path's fused `FrameIngest` pass and passed in precomputed — building a
/// key walks no pixels. The stored entry keeps the frame bytes so every
/// hit is verified against the actual content (a collision is rejected,
/// never served). The
/// `(class, generation)` pair (both 0 in closed-loop mode) makes every
/// open-loop re-characterization an implicit invalidation *scoped to its
/// class*: a rebuilt class's fits are never probed again and age out of the
/// LRU, while every other class's fits keep serving. The tenant id (0
/// outside multi-tenant serving) keeps tenants' fits disjoint even when
/// their generation counters collide, so no cross-tenant replay is
/// possible on a shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ExactKey {
    width: u32,
    height: u32,
    content_hash: u128,
    budget_band: u32,
    tenant: u16,
    class: u16,
    generation: u64,
}

impl ExactKey {
    pub(crate) fn of(
        frame: &GrayImage,
        content_hash: u128,
        budget_band: u32,
        tenant: u16,
        class: u16,
        generation: u64,
    ) -> Self {
        ExactKey {
            width: frame.width(),
            height: frame.height(),
            content_hash,
            budget_band,
            tenant,
            class,
            generation,
        }
    }

    /// Stored frame width (for snapshot spill).
    pub(crate) fn width(&self) -> u32 {
        self.width
    }

    /// Stored frame height (for snapshot spill).
    pub(crate) fn height(&self) -> u32 {
        self.height
    }

    /// Quantized budget band the fit was made for (for snapshot spill).
    pub(crate) fn budget_band(&self) -> u32 {
        self.budget_band
    }

    /// Content class the frame routed to (for snapshot spill).
    pub(crate) fn class(&self) -> u16 {
        self.class
    }

    /// Owning tenant (for snapshot spill filtering).
    pub(crate) fn tenant(&self) -> u16 {
        self.tenant
    }

    /// Characteristic generation the fit was made under (for snapshot
    /// spill filtering — only current-generation fits are worth carrying).
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }
}

/// Exact-mode value: the stored frame bytes (for hit verification) plus the
/// shared outcome to replay. Cloning is two `Arc` bumps.
#[derive(Debug, Clone)]
pub(crate) struct ExactEntry {
    pixels: Arc<[u8]>,
    pub(crate) outcome: Arc<ScalingOutcome>,
}

impl ExactEntry {
    pub(crate) fn new(frame: &GrayImage, outcome: Arc<ScalingOutcome>) -> Self {
        ExactEntry {
            pixels: frame.as_raw().into(),
            outcome,
        }
    }

    /// Whether the stored frame is byte-identical to `frame` (hash-collision
    /// guard on the hit path; one memcmp, no allocation).
    pub(crate) fn matches(&self, frame: &GrayImage) -> bool {
        self.pixels[..] == *frame.as_raw()
    }

    /// The stored frame bytes (for snapshot spill).
    pub(crate) fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Bytes this entry charges against the cache budget: stored pixels,
    /// displayed image, LUT, and fixed struct overhead.
    pub(crate) fn weight(&self) -> usize {
        self.pixels.len() + outcome_bytes(&self.outcome) + std::mem::size_of::<Self>()
    }
}

/// Bytes a cached outcome holds resident: the displayed image, the LUT, the
/// policy name and the struct itself.
pub(crate) fn outcome_bytes(outcome: &ScalingOutcome) -> usize {
    outcome.displayed.pixel_count()
        + 256
        + outcome.policy.len()
        + std::mem::size_of::<ScalingOutcome>()
}

/// Bytes a cached transform holds resident: its control points, the LUT
/// and the struct itself (whose fused display response is stored inline).
pub(crate) fn transform_bytes(transform: &FrameTransform) -> usize {
    std::mem::size_of_val(transform.curve.points()) + 256 + std::mem::size_of::<FrameTransform>()
}

/// Approximate-mode key: the quantized histogram signature plus frame
/// shape, budget band, owning tenant, content class and the class's
/// characteristic generation (see [`ExactKey`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SignatureKey {
    width: u32,
    height: u32,
    signature: HistogramSignature,
    budget_band: u32,
    tenant: u16,
    class: u16,
    generation: u64,
}

impl SignatureKey {
    pub(crate) fn of(
        frame: &GrayImage,
        histogram: &Histogram,
        resolution: u8,
        budget_band: u32,
        tenant: u16,
        class: u16,
        generation: u64,
    ) -> Self {
        SignatureKey {
            width: frame.width(),
            height: frame.height(),
            signature: HistogramSignature::with_resolution(histogram, resolution),
            budget_band,
            tenant,
            class,
            generation,
        }
    }

    /// Rebuilds a key from its spilled parts (the snapshot restore path;
    /// the signature is carried verbatim rather than recomputed because the
    /// spilled transform, not the frame, is what is being restored).
    pub(crate) fn from_parts(
        width: u32,
        height: u32,
        signature: HistogramSignature,
        budget_band: u32,
        tenant: u16,
        class: u16,
        generation: u64,
    ) -> Self {
        SignatureKey {
            width,
            height,
            signature,
            budget_band,
            tenant,
            class,
            generation,
        }
    }

    /// Keyed frame width (for snapshot spill).
    pub(crate) fn width(&self) -> u32 {
        self.width
    }

    /// Keyed frame height (for snapshot spill).
    pub(crate) fn height(&self) -> u32 {
        self.height
    }

    /// The quantized histogram signature (for snapshot spill).
    pub(crate) fn signature(&self) -> &HistogramSignature {
        &self.signature
    }

    /// Quantized budget band the fit was made for (for snapshot spill).
    pub(crate) fn budget_band(&self) -> u32 {
        self.budget_band
    }

    /// Content class the frame routed to (for snapshot spill).
    pub(crate) fn class(&self) -> u16 {
        self.class
    }

    /// Owning tenant (for snapshot spill filtering).
    pub(crate) fn tenant(&self) -> u16 {
        self.tenant
    }

    /// Characteristic generation the fit was made under (for snapshot
    /// spill filtering — only current-generation fits are worth carrying).
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }
}

/// The exact-mode cache: store, single-flight table, hash seed and band
/// width.
#[derive(Debug)]
pub(crate) struct ExactCache {
    pub(crate) store: ShardedLru<ExactKey, ExactEntry>,
    pub(crate) flights: FlightTable<ExactKey>,
    pub(crate) seed: u64,
    pub(crate) band_width: f64,
}

/// The approximate-mode cache: store, single-flight table, signature
/// resolution and band width.
#[derive(Debug)]
pub(crate) struct ApproximateCache {
    pub(crate) store: ShardedLru<SignatureKey, Arc<FrameTransform>>,
    pub(crate) flights: FlightTable<SignatureKey>,
    pub(crate) resolution: u8,
    pub(crate) band_width: f64,
}

/// The served-lookup counters of a transformation cache's underlying
/// [`ShardedLru`], snapshotted for reconciliation against `EngineStats`.
///
/// On every serving path these agree with the engine's own accounting:
/// `hits`/`misses` match `EngineStats::cache_hits`/`cache_misses`, and
/// `rejections`/`coalesced` match `cache_rejected`/`cache_coalesced`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups served from the cache (including coalesced hits).
    pub hits: u64,
    /// Lookups that ran a full fit (including rejected hits).
    pub misses: u64,
    /// Hits rejected by verification (content mismatch or distortion over
    /// the requesting budget).
    pub rejections: u64,
    /// Misses served by another worker's concurrent fit.
    pub coalesced: u64,
}

/// The engine's transformation cache in one of its two keying modes.
#[derive(Debug)]
pub(crate) enum TransformCache {
    Exact(ExactCache),
    Approximate(ApproximateCache),
}

impl TransformCache {
    pub(crate) fn new(config: &CacheConfig) -> Self {
        let byte_budget = config.byte_budget.unwrap_or(usize::MAX);
        match config.mode {
            CacheMode::Exact => TransformCache::Exact(ExactCache {
                store: ShardedLru::bounded(config.capacity, config.shards, byte_budget, config.ttl),
                flights: FlightTable::new(config.shards),
                // Random per cache so exact-key collisions cannot be
                // precomputed by adversarial frame content.
                seed: RandomState::new().hash_one(0x4845_4253u32),
                band_width: config.budget_band_width,
            }),
            CacheMode::Approximate => TransformCache::Approximate(ApproximateCache {
                store: ShardedLru::bounded(config.capacity, config.shards, byte_budget, config.ttl),
                flights: FlightTable::new(config.shards),
                resolution: config.signature_resolution,
                band_width: config.budget_band_width,
            }),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            TransformCache::Exact(cache) => cache.store.len(),
            TransformCache::Approximate(cache) => cache.store.len(),
        }
    }

    /// Resident bytes currently charged across all shards.
    pub(crate) fn bytes(&self) -> usize {
        match self {
            TransformCache::Exact(cache) => cache.store.bytes(),
            TransformCache::Approximate(cache) => cache.store.bytes(),
        }
    }

    /// Sets (or replaces) one tenant's byte partition (see
    /// [`ShardedLru::set_tenant_limit`]).
    pub(crate) fn set_tenant_limit(&self, tenant: u16, byte_limit: usize) {
        match self {
            TransformCache::Exact(cache) => cache.store.set_tenant_limit(tenant, byte_limit),
            TransformCache::Approximate(cache) => cache.store.set_tenant_limit(tenant, byte_limit),
        }
    }

    /// Resident bytes currently charged to `tenant` across all shards.
    pub(crate) fn tenant_bytes(&self, tenant: u16) -> usize {
        match self {
            TransformCache::Exact(cache) => cache.store.tenant_bytes(tenant),
            TransformCache::Approximate(cache) => cache.store.tenant_bytes(tenant),
        }
    }

    /// Served hit/miss/rejection/coalesced counters of the underlying
    /// store (for reconciliation against `EngineStats`).
    pub(crate) fn counters(&self) -> CacheCounters {
        match self {
            TransformCache::Exact(cache) => CacheCounters {
                hits: cache.store.hits(),
                misses: cache.store.misses(),
                rejections: cache.store.rejections(),
                coalesced: cache.store.coalesced(),
            },
            TransformCache::Approximate(cache) => CacheCounters {
                hits: cache.store.hits(),
                misses: cache.store.misses(),
                rejections: cache.store.rejections(),
                coalesced: cache.store.coalesced(),
            },
        }
    }

    /// Poisoned-lock recoveries performed inside the store and the
    /// single-flight table (summed into `EngineStats::poison_recoveries`).
    pub(crate) fn poison_recoveries(&self) -> u64 {
        match self {
            TransformCache::Exact(cache) => {
                cache.store.poison_recoveries() + cache.flights.poison_recoveries()
            }
            TransformCache::Approximate(cache) => {
                cache.store.poison_recoveries() + cache.flights.poison_recoveries()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strips the generation token for assertions on the value alone.
    fn value<V>(entry: Option<(V, u64)>) -> Option<V> {
        entry.map(|(v, _)| v)
    }

    #[test]
    fn lru_get_and_insert_round_trip() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(8, 2);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        assert!(lru.insert(1, 10, 4));
        assert_eq!(value(lru.get(&1)), Some(10));
        assert_eq!(lru.hits(), 1);
        assert_eq!(lru.misses(), 1);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.bytes(), 4);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        // One shard so the eviction order is fully observable.
        let lru: ShardedLru<u32, u32> = ShardedLru::new(3, 1);
        lru.insert(1, 1, 1);
        lru.insert(2, 2, 1);
        lru.insert(3, 3, 1);
        // Refresh 1 so 2 becomes the victim.
        assert_eq!(value(lru.get(&1)), Some(1));
        lru.insert(4, 4, 1);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.get(&2), None, "LRU entry should have been evicted");
        assert_eq!(value(lru.get(&1)), Some(1));
        assert_eq!(value(lru.get(&3)), Some(3));
        assert_eq!(value(lru.get(&4)), Some(4));
    }

    #[test]
    fn reinserting_updates_without_evicting() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        lru.insert(1, 1, 8);
        lru.insert(2, 2, 8);
        lru.insert(1, 100, 16);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.bytes(), 24, "replacement recharges the new weight");
        assert_eq!(value(lru.get(&1)), Some(100));
        assert_eq!(value(lru.get(&2)), Some(2));
    }

    #[test]
    fn byte_budget_evicts_before_the_entry_cap() {
        // Entry cap 8 but only 100 bytes: three 40-byte entries cannot
        // coexist.
        let lru: ShardedLru<u32, u32> = ShardedLru::bounded(8, 1, 100, None);
        lru.insert(1, 1, 40);
        lru.insert(2, 2, 40);
        assert_eq!(lru.len(), 2);
        lru.insert(3, 3, 40);
        assert_eq!(lru.len(), 2, "third 40B entry must evict the LRU");
        assert!(lru.bytes() <= 100);
        assert_eq!(lru.get(&1), None, "oldest entry evicted by byte pressure");
        assert_eq!(value(lru.get(&2)), Some(2));
        assert_eq!(value(lru.get(&3)), Some(3));
    }

    #[test]
    fn oversized_entries_are_refused_not_thrashed() {
        let lru: ShardedLru<u32, u32> = ShardedLru::bounded(8, 1, 100, None);
        lru.insert(1, 1, 30);
        assert!(
            !lru.insert(2, 2, 1000),
            "an entry above the whole shard budget is refused"
        );
        assert_eq!(lru.len(), 1, "the resident entry survives");
        assert_eq!(value(lru.get(&1)), Some(1));
        assert!(lru.bytes() <= 100);
    }

    #[test]
    fn ttl_expires_entries_on_lookup() {
        let lru: ShardedLru<u32, u32> = ShardedLru::bounded(8, 1, usize::MAX, Some(Duration::ZERO));
        lru.insert(1, 1, 4);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1), None, "zero TTL expires immediately");
        assert_eq!(lru.len(), 0, "expired entry is dropped");
        assert_eq!(lru.bytes(), 0);
        assert_eq!(lru.misses(), 1);
    }

    /// Regression: a TTL-expired entry that is *not* the LRU victim used to
    /// keep charging the byte budget (it was only reclaimed when its own
    /// key was probed), evicting live fits under byte pressure. Insert-time
    /// eviction must reclaim expired residents before touching live LRU
    /// victims.
    #[test]
    fn insert_reclaims_expired_residents_before_evicting_live_ones() {
        let ttl = Duration::from_millis(60);
        let lru: ShardedLru<u32, u32> = ShardedLru::bounded(8, 1, 100, Some(ttl));
        lru.insert(1, 1, 40); // will expire first
        std::thread::sleep(Duration::from_millis(40));
        lru.insert(2, 2, 40); // still live when 1 expires
                              // Refresh 1's recency so the *live* entry 2 is the LRU victim.
        assert!(lru.get(&1).is_some());
        std::thread::sleep(Duration::from_millis(30));
        // Entry 1 is now expired (70 ms old), entry 2 live (30 ms old) but
        // least recently used. Inserting 40 more bytes needs room: the
        // expired resident must be reclaimed, not the live victim.
        lru.insert(3, 3, 40);
        assert_eq!(value(lru.get(&2)), Some(2), "live entry survives");
        assert_eq!(value(lru.get(&3)), Some(3));
        assert_eq!(lru.get(&1), None, "expired entry was reclaimed");
        assert!(lru.bytes() <= 100);
    }

    #[test]
    fn misses_do_not_advance_the_recency_tick() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        lru.insert(1, 1, 1);
        let tick_before = lru.shards[0].lock().unwrap().tick;
        for key in 100..200u32 {
            assert_eq!(lru.get(&key), None);
        }
        let tick_after = lru.shards[0].lock().unwrap().tick;
        assert_eq!(
            tick_before, tick_after,
            "miss traffic must not burn recency ticks"
        );
        assert_eq!(value(lru.get(&1)), Some(1));
        assert_eq!(lru.shards[0].lock().unwrap().tick, tick_before + 1);
    }

    #[test]
    fn reject_reclassifies_a_hit_and_removes_the_entry() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        lru.insert(1, 1, 4);
        let (_, generation) = lru.get(&1).unwrap();
        lru.reject(&1, generation);
        assert_eq!(lru.hits(), 0, "rejected hit no longer counts as served");
        assert_eq!(lru.misses(), 1);
        assert_eq!(lru.rejections(), 1);
        assert_eq!(lru.len(), 0, "rejected entry is removed");
        assert_eq!(lru.bytes(), 0);
    }

    #[test]
    fn stale_reject_never_evicts_a_fresh_replacement() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        lru.insert(1, 1, 4);
        let (_, stale) = lru.get(&1).unwrap();
        // Another worker rejects and refits while our verification is slow.
        lru.insert(1, 2, 4);
        lru.reject(&1, stale);
        assert_eq!(
            value(lru.get(&1)),
            Some(2),
            "the fresh replacement must survive a stale rejection"
        );
        assert_eq!(lru.rejections(), 1, "the rejection itself still counts");
    }

    #[test]
    fn get_after_wait_reclassifies_a_miss_as_a_coalesced_hit() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        assert_eq!(lru.get(&1), None); // counted miss
        lru.insert(1, 7, 4); // "another worker's" fit lands
        assert_eq!(value(lru.get_after_wait(&1)), Some(7));
        assert_eq!(lru.hits(), 1);
        assert_eq!(lru.misses(), 0, "the wait converted the miss");
        assert_eq!(lru.coalesced(), 1);

        // A failed re-probe leaves the miss standing.
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get_after_wait(&2), None);
        assert_eq!(lru.misses(), 1);
        assert_eq!(lru.coalesced(), 1);
    }

    #[test]
    fn reject_after_wait_reverses_the_coalesced_reclassification() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        assert_eq!(lru.get(&1), None); // counted miss
        lru.insert(1, 7, 4);
        let (_, generation) = lru.get_after_wait(&1).unwrap();
        // The waited-for fit fails this caller's (stricter) verification.
        lru.reject_after_wait(&1, generation);
        assert_eq!(lru.hits(), 0);
        assert_eq!(lru.misses(), 1, "the lookup ends as a plain miss");
        assert_eq!(lru.coalesced(), 0, "the coalesced credit is reversed");
        assert_eq!(lru.rejections(), 1);
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn flight_table_elects_exactly_one_leader_per_key() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        let table: FlightTable<u32> = FlightTable::new(4);
        let fits = AtomicUsize::new(0);
        let waits = AtomicUsize::new(0);
        let barrier = Barrier::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    barrier.wait();
                    match table.join(&42) {
                        Flight::Leader(_guard) => {
                            // Hold leadership long enough that the others
                            // must wait rather than racing past the flight.
                            std::thread::sleep(Duration::from_millis(20));
                            fits.fetch_add(1, Ordering::SeqCst);
                        }
                        Flight::Waited => {
                            waits.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(fits.load(Ordering::SeqCst), 1, "one leader");
        assert_eq!(waits.load(Ordering::SeqCst), 3, "everyone else waited");
        // The table is clean afterwards: a new join leads immediately.
        assert!(matches!(table.join(&42), Flight::Leader(_)));
    }

    #[test]
    fn flight_shards_do_not_block_unrelated_keys() {
        // Hold leadership on many keys at once: joining a different key
        // must lead immediately instead of waiting on another key's flight
        // (if it waited, this single-threaded test would deadlock).
        let table: FlightTable<u32> = FlightTable::new(8);
        let guards: Vec<_> = (0..32u32)
            .map(|k| match table.join(&k) {
                Flight::Leader(guard) => guard,
                Flight::Waited => panic!("distinct keys must not wait on each other"),
            })
            .collect();
        drop(guards);
        assert!(matches!(table.join(&0), Flight::Leader(_)));

        // A degenerate single-shard table behaves the same way.
        let single: FlightTable<u32> = FlightTable::new(1);
        let _a = match single.join(&1) {
            Flight::Leader(guard) => guard,
            Flight::Waited => panic!("first join must lead"),
        };
        assert!(matches!(single.join(&2), Flight::Leader(_)));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let lru: Arc<ShardedLru<u32, u32>> = Arc::new(ShardedLru::new(128, 8));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let lru = Arc::clone(&lru);
                s.spawn(move || {
                    for i in 0..200u32 {
                        let key = (t * 200 + i) % 96;
                        lru.insert(key, key * 2, 8);
                        assert_eq!(value(lru.get(&key)), Some(key * 2));
                    }
                });
            }
        });
        assert!(lru.len() <= 128);
        assert!(lru.hits() >= 4 * 200);
    }

    /// Builds an exact key the way the serve path does: hash first (one
    /// fused-ingest pass in production, `frame_hash128` here), then the key.
    fn exact_key(
        frame: &GrayImage,
        seed: u64,
        band: u32,
        tenant: u16,
        class: u16,
        generation: u64,
    ) -> ExactKey {
        ExactKey::of(
            frame,
            hebs_imaging::frame_hash128(frame, seed),
            band,
            tenant,
            class,
            generation,
        )
    }

    #[test]
    fn exact_keys_compare_frame_content_without_copying() {
        let a = GrayImage::filled(8, 8, 10);
        let b = GrayImage::filled(8, 8, 10);
        let c = GrayImage::filled(8, 8, 11);
        assert_eq!(exact_key(&a, 9, 1, 0, 0, 0), exact_key(&b, 9, 1, 0, 0, 0));
        assert_ne!(exact_key(&a, 9, 1, 0, 0, 0), exact_key(&c, 9, 1, 0, 0, 0));
        assert_ne!(
            exact_key(&a, 9, 1, 0, 0, 0),
            exact_key(&a, 8, 1, 0, 0, 0),
            "hash seed is part of the key"
        );
        assert_ne!(
            exact_key(&a, 9, 1, 0, 0, 0),
            exact_key(&a, 9, 2, 0, 0, 0),
            "budget band is part of the key"
        );
        assert_ne!(
            exact_key(&a, 9, 1, 0, 0, 0),
            exact_key(&a, 9, 1, 0, 0, 1),
            "characteristic generation is part of the key"
        );
        assert_ne!(
            exact_key(&a, 9, 1, 0, 0, 0),
            exact_key(&a, 9, 1, 0, 1, 0),
            "content class is part of the key"
        );
        assert_ne!(
            exact_key(&a, 9, 1, 0, 0, 0),
            exact_key(&a, 9, 1, 1, 0, 0),
            "tenant is part of the key"
        );
    }

    #[test]
    fn exact_entries_verify_stored_content() {
        let frame = GrayImage::filled(8, 8, 10);
        let other = GrayImage::filled(8, 8, 11);
        let outcome = Arc::new(dummy_outcome(&frame));
        let entry = ExactEntry::new(&frame, outcome);
        assert!(entry.matches(&frame));
        assert!(!entry.matches(&other));
        assert!(
            entry.weight() >= 2 * frame.pixel_count() + 256,
            "weight charges stored pixels, displayed image and LUT"
        );
    }

    fn dummy_outcome(frame: &GrayImage) -> ScalingOutcome {
        use hebs_core::{BacklightPolicy, HebsPolicy, PipelineConfig};
        HebsPolicy::closed_loop(PipelineConfig::default())
            .optimize(frame, 0.10)
            .expect("fit succeeds")
    }

    #[test]
    fn signature_keys_tolerate_noise_but_not_shape() {
        let a = GrayImage::filled(16, 16, 100);
        let wide = GrayImage::filled(32, 8, 100);
        assert_ne!(
            SignatureKey::of(&a, &Histogram::of(&a), 16, 1, 0, 0, 0),
            SignatureKey::of(&wide, &Histogram::of(&wide), 16, 1, 0, 0, 0),
            "frame shape is part of the key"
        );
        assert_ne!(
            SignatureKey::of(&a, &Histogram::of(&a), 16, 1, 0, 0, 0),
            SignatureKey::of(&a, &Histogram::of(&a), 16, 1, 0, 0, 2),
            "characteristic generation is part of the key"
        );
        assert_ne!(
            SignatureKey::of(&a, &Histogram::of(&a), 16, 1, 0, 0, 0),
            SignatureKey::of(&a, &Histogram::of(&a), 16, 1, 0, 3, 0),
            "content class is part of the key"
        );
        assert_ne!(
            SignatureKey::of(&a, &Histogram::of(&a), 16, 1, 0, 0, 0),
            SignatureKey::of(&a, &Histogram::of(&a), 16, 1, 7, 0, 0),
            "tenant is part of the key"
        );
    }

    #[test]
    fn budget_bands_quantize_budgets() {
        assert_eq!(budget_band(0.10, 0.01), budget_band(0.105, 0.01));
        assert_ne!(budget_band(0.10, 0.01), budget_band(0.12, 0.01));
        assert_eq!(budget_band(0.30, 0.5), budget_band(0.01, 0.5));
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _: ShardedLru<u32, u32> = ShardedLru::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "byte budget must be nonzero")]
    fn zero_byte_budget_rejected() {
        let _: ShardedLru<u32, u32> = ShardedLru::bounded(8, 1, 0, None);
    }

    #[test]
    fn total_capacity_is_never_exceeded_when_shards_do_not_divide_it() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(10, 8);
        for key in 0..200u32 {
            lru.insert(key, key, 1);
        }
        assert!(lru.len() <= 10, "{} entries exceed capacity 10", lru.len());
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(2, 64);
        lru.insert(1, 1, 1);
        lru.insert(2, 2, 1);
        lru.insert(3, 3, 1);
        assert!(lru.len() <= 2);
    }

    #[test]
    fn tenant_partition_evicts_only_the_over_budget_tenant() {
        // One shard so eviction is fully observable. Tenant 1 gets 80
        // bytes; tenant 2 is unbounded within the shard's 1000.
        let lru: ShardedLru<u32, u32> = ShardedLru::bounded(16, 1, 1000, None);
        lru.set_tenant_limit(1, 80);
        assert!(lru.insert_for(1, 10, 10, 40));
        assert!(lru.insert_for(2, 20, 20, 40));
        assert!(lru.insert_for(1, 11, 11, 40));
        assert_eq!(lru.tenant_bytes(1), 80);
        // A third tenant-1 entry must evict tenant 1's own LRU entry (key
        // 10), never tenant 2's older entry.
        assert!(lru.insert_for(1, 12, 12, 40));
        assert_eq!(lru.tenant_bytes(1), 80, "partition holds");
        assert_eq!(lru.get(&10), None, "tenant 1's LRU entry was evicted");
        assert_eq!(value(lru.get(&20)), Some(20), "tenant 2 is untouched");
        assert_eq!(value(lru.get(&11)), Some(11));
        assert_eq!(value(lru.get(&12)), Some(12));
        assert_eq!(lru.tenant_bytes(2), 40);
    }

    #[test]
    fn tenant_partition_refuses_entries_larger_than_the_slice() {
        let lru: ShardedLru<u32, u32> = ShardedLru::bounded(16, 1, 1000, None);
        lru.set_tenant_limit(1, 50);
        assert!(
            !lru.insert_for(1, 1, 1, 60),
            "over the tenant's whole slice"
        );
        assert!(lru.insert_for(1, 1, 1, 50), "exactly the slice fits");
        assert_eq!(lru.tenant_bytes(1), 50);
    }

    #[test]
    fn unlimited_tenants_share_the_global_budget_as_before() {
        let lru: ShardedLru<u32, u32> = ShardedLru::bounded(8, 1, 100, None);
        // No tenant limits set: tenant-charged inserts still respect the
        // global byte cap (and plain inserts are tenant 0).
        assert!(lru.insert(1, 1, 40));
        assert!(lru.insert_for(3, 2, 2, 40));
        assert!(lru.insert_for(3, 3, 3, 40));
        assert!(lru.bytes() <= 100);
        assert_eq!(lru.get(&1), None, "global pressure evicts the LRU entry");
        assert_eq!(lru.tenant_bytes(0), 0, "tenant 0's entry was evicted");
        assert_eq!(lru.tenant_bytes(3), 80);
    }

    #[test]
    fn global_eviction_and_removal_discharge_tenant_bytes() {
        let lru: ShardedLru<u32, u32> = ShardedLru::bounded(8, 1, 1000, None);
        lru.set_tenant_limit(5, 100);
        lru.insert_for(5, 1, 1, 60);
        let (_, generation) = lru.get(&1).unwrap();
        lru.reject(&1, generation);
        assert_eq!(lru.tenant_bytes(5), 0, "a rejected entry is discharged");
        // Replacement under the same key recharges the new weight once.
        lru.insert_for(5, 2, 2, 30);
        lru.insert_for(5, 2, 2, 50);
        assert_eq!(lru.tenant_bytes(5), 50);
        assert_eq!(lru.bytes(), 50);
    }
}
