//! The transformation cache: a sharded LRU keyed by frame content or by
//! quantized histogram signature.
//!
//! The expensive part of serving a frame is the *fit* (GHE solve, blend
//! search, piecewise-linear coarsening, range search); the *application* of
//! a fitted transform is one LUT pass plus the display models. Video traffic
//! is dominated by runs of identical or near-identical frames, so the engine
//! caches fits and replays them:
//!
//! * [`CacheMode::Exact`] keys on the full frame content (plus the
//!   distortion budget). A hit means the frame was served before, so the
//!   whole [`ScalingOutcome`](hebs_core::ScalingOutcome) is replayed
//!   bit-identically. This mode can never change a result.
//! * [`CacheMode::Approximate`] keys on the frame's quantized
//!   [`HistogramSignature`]. Near-identical frames (sensor noise, small
//!   motion) share a fit; the cached [`FrameTransform`] is re-applied to the
//!   actual frame, so distortion and power are still measured per frame —
//!   only the fitted curve is approximate.
//!
//! The store itself is a generic sharded LRU ([`ShardedLru`]): each shard is
//! an independent mutex around a hash map plus a recency index, so worker
//! threads contend only when they hash to the same shard.

use std::collections::hash_map::RandomState;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hebs_core::{FrameTransform, ScalingOutcome};
use hebs_imaging::{GrayImage, Histogram, HistogramSignature, DEFAULT_SIGNATURE_RESOLUTION};

/// How cache keys are derived from frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Key on the exact frame content: hits replay the full outcome
    /// bit-identically. Wins on repeated frames (static scenes, UI, logo
    /// cards) and is always safe.
    Exact,
    /// Key on the quantized histogram signature: near-identical frames
    /// reuse the fitted transform, which is re-applied to each actual frame.
    /// Wins on noisy/slowly-moving video at a bounded approximation error.
    Approximate,
}

/// Configuration of the engine's transformation cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total number of cached fits across all shards.
    pub capacity: usize,
    /// Number of independently locked shards.
    pub shards: usize,
    /// Key derivation mode.
    pub mode: CacheMode,
    /// Quantization resolution of the histogram signature (only used by
    /// [`CacheMode::Approximate`]); see
    /// [`HistogramSignature::with_resolution`].
    pub signature_resolution: u8,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 512,
            shards: 8,
            mode: CacheMode::Exact,
            signature_resolution: DEFAULT_SIGNATURE_RESOLUTION,
        }
    }
}

impl CacheConfig {
    /// An exact-keyed cache with the default capacity.
    pub fn exact() -> Self {
        CacheConfig::default()
    }

    /// A signature-keyed cache with the default capacity and resolution.
    pub fn approximate() -> Self {
        CacheConfig {
            mode: CacheMode::Approximate,
            ..CacheConfig::default()
        }
    }

    /// Returns the configuration with a different total capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }
}

/// One LRU shard: the stored entries plus a recency index.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    tick: u64,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            capacity,
        }
    }

    fn touch(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let (value, old_tick) = self.map.get_mut(key)?;
        let value = value.clone();
        self.recency.remove(old_tick);
        *old_tick = tick;
        self.recency.insert(tick, key.clone());
        Some(value)
    }

    fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_tick)) = self.map.get(&key) {
            self.recency.remove(old_tick);
        } else if self.map.len() >= self.capacity {
            if let Some((_, victim)) = self.recency.pop_first() {
                self.map.remove(&victim);
            }
        }
        self.recency.insert(tick, key.clone());
        self.map.insert(key, (value, tick));
    }
}

/// A thread-safe LRU map split into independently locked shards.
///
/// Values are returned by clone, so `V` is typically an [`Arc`] or another
/// cheaply clonable handle. Hit/miss counters are global and lock-free.
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache holding at most `capacity` entries split over
    /// `shards` independent locks. The capacity is partitioned exactly:
    /// shards whose budget does not divide evenly get one entry more or
    /// less, but the total never exceeds `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is 0.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        assert!(shards > 0, "cache shard count must be nonzero");
        let shards = shards.min(capacity);
        let base = capacity / shards;
        let remainder = capacity % shards;
        ShardedLru {
            shards: (0..shards)
                .map(|i| Mutex::new(Shard::new(base + usize::from(i < remainder))))
                .collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let index = self.hasher.hash_one(key) as usize % self.shards.len();
        &self.shards[index]
    }

    /// Looks `key` up, refreshing its recency and counting a hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let value = self.shard_for(key).lock().expect("cache lock").touch(key);
        match &value {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        value
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// entry of the target shard when it is full.
    pub fn insert(&self, key: K, value: V) {
        self.shard_for(&key)
            .lock()
            .expect("cache lock")
            .insert(key, value);
    }

    /// Number of entries currently cached (sums all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Exact-mode key: the full frame content plus the distortion budget.
///
/// The pixel buffer is shared behind an [`Arc`]; equality compares the
/// actual bytes, so a hit is a proof that the identical frame was served
/// before with the identical budget.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ExactKey {
    width: u32,
    height: u32,
    pixels: Arc<[u8]>,
    budget_bits: u64,
}

impl ExactKey {
    pub(crate) fn of(frame: &GrayImage, max_distortion: f64) -> Self {
        ExactKey {
            width: frame.width(),
            height: frame.height(),
            pixels: frame.as_raw().into(),
            budget_bits: max_distortion.to_bits(),
        }
    }
}

/// Approximate-mode key: the quantized histogram signature plus frame shape
/// and budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SignatureKey {
    width: u32,
    height: u32,
    signature: HistogramSignature,
    budget_bits: u64,
}

impl SignatureKey {
    pub(crate) fn of(
        frame: &GrayImage,
        histogram: &Histogram,
        resolution: u8,
        max_distortion: f64,
    ) -> Self {
        SignatureKey {
            width: frame.width(),
            height: frame.height(),
            signature: HistogramSignature::with_resolution(histogram, resolution),
            budget_bits: max_distortion.to_bits(),
        }
    }
}

/// The engine's transformation cache in one of its two keying modes.
#[derive(Debug)]
pub(crate) enum TransformCache {
    Exact(ShardedLru<ExactKey, Arc<ScalingOutcome>>),
    Approximate {
        store: ShardedLru<SignatureKey, FrameTransform>,
        resolution: u8,
    },
}

impl TransformCache {
    pub(crate) fn new(config: &CacheConfig) -> Self {
        match config.mode {
            CacheMode::Exact => {
                TransformCache::Exact(ShardedLru::new(config.capacity, config.shards))
            }
            CacheMode::Approximate => TransformCache::Approximate {
                store: ShardedLru::new(config.capacity, config.shards),
                resolution: config.signature_resolution,
            },
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            TransformCache::Exact(store) => store.len(),
            TransformCache::Approximate { store, .. } => store.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_get_and_insert_round_trip() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(8, 2);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        lru.insert(1, 10);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.hits(), 1);
        assert_eq!(lru.misses(), 1);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        // One shard so the eviction order is fully observable.
        let lru: ShardedLru<u32, u32> = ShardedLru::new(3, 1);
        lru.insert(1, 1);
        lru.insert(2, 2);
        lru.insert(3, 3);
        // Refresh 1 so 2 becomes the victim.
        assert_eq!(lru.get(&1), Some(1));
        lru.insert(4, 4);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.get(&2), None, "LRU entry should have been evicted");
        assert_eq!(lru.get(&1), Some(1));
        assert_eq!(lru.get(&3), Some(3));
        assert_eq!(lru.get(&4), Some(4));
    }

    #[test]
    fn reinserting_updates_without_evicting() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        lru.insert(1, 1);
        lru.insert(2, 2);
        lru.insert(1, 100);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some(100));
        assert_eq!(lru.get(&2), Some(2));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let lru: Arc<ShardedLru<u32, u32>> = Arc::new(ShardedLru::new(128, 8));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let lru = Arc::clone(&lru);
                s.spawn(move || {
                    for i in 0..200u32 {
                        let key = (t * 200 + i) % 96;
                        lru.insert(key, key * 2);
                        assert_eq!(lru.get(&key), Some(key * 2));
                    }
                });
            }
        });
        assert!(lru.len() <= 128);
        assert!(lru.hits() >= 4 * 200);
    }

    #[test]
    fn exact_keys_compare_frame_content() {
        let a = GrayImage::filled(8, 8, 10);
        let b = GrayImage::filled(8, 8, 10);
        let c = GrayImage::filled(8, 8, 11);
        assert_eq!(ExactKey::of(&a, 0.1), ExactKey::of(&b, 0.1));
        assert_ne!(ExactKey::of(&a, 0.1), ExactKey::of(&c, 0.1));
        assert_ne!(ExactKey::of(&a, 0.1), ExactKey::of(&a, 0.2));
    }

    #[test]
    fn signature_keys_tolerate_noise_but_not_shape() {
        let a = GrayImage::filled(16, 16, 100);
        let wide = GrayImage::filled(32, 8, 100);
        assert_ne!(
            SignatureKey::of(&a, &Histogram::of(&a), 16, 0.1),
            SignatureKey::of(&wide, &Histogram::of(&wide), 16, 0.1),
            "frame shape is part of the key"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _: ShardedLru<u32, u32> = ShardedLru::new(0, 1);
    }

    #[test]
    fn total_capacity_is_never_exceeded_when_shards_do_not_divide_it() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(10, 8);
        for key in 0..200u32 {
            lru.insert(key, key);
        }
        assert!(lru.len() <= 10, "{} entries exceed capacity 10", lru.len());
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(2, 64);
        lru.insert(1, 1);
        lru.insert(2, 2);
        lru.insert(3, 3);
        assert!(lru.len() <= 2);
    }
}
