//! Serving modes: closed-loop search vs. the paper's open-loop table lookup,
//! with background re-characterization.
//!
//! The HEBS hardware flow is *open-loop*: an offline-fitted distortion
//! characteristic curve maps the distortion budget straight to a dynamic
//! range, so serving a frame costs **one** fit evaluation instead of the
//! closed-loop bisection's ~8. The catch is that the curve describes the
//! traffic it was characterized on; when traffic drifts, the promised
//! distortion bound stops holding.
//!
//! [`ServingMode::OpenLoop`] closes that gap at serving scale:
//!
//! * every cache miss fits through the open-loop policy (one evaluation);
//! * a per-serve *drift check* compares the measured distortion against the
//!   requesting budget — an over-budget frame falls back to the closed-loop
//!   search for that frame only, so the distortion contract always holds;
//! * a rolling [`TrafficSketch`] of recent frame histograms feeds a
//!   background re-characterization: every N frames and/or after enough
//!   drift fallbacks, one worker rebuilds the
//!   [`DistortionCharacteristic`] from the sketch (entirely in the
//!   histogram domain) and atomically swaps it into the engine's curve
//!   slot while the other workers keep serving;
//! * each swap bumps a *characteristic generation* that is part of every
//!   cache key, so fits made under a stale curve are never replayed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hebs_core::{DistortionCharacteristic, HebsPolicy, PipelineConfig, DEFAULT_RANGES};
use hebs_imaging::{GrayImage, Histogram};

/// How the engine turns a distortion budget into a fitted transform on a
/// cache miss.
#[derive(Debug, Clone, Default)]
pub enum ServingMode {
    /// Bisect over target ranges per miss so the distortion bound is met
    /// exactly (~8 fit evaluations per miss). The default.
    #[default]
    ClosedLoop,
    /// Look the range up on a distortion characteristic curve (one fit
    /// evaluation per miss), fall back to the closed-loop search for frames
    /// whose measured distortion drifts over the budget, and periodically
    /// re-characterize the curve from recent traffic.
    OpenLoop {
        /// When and from what the curve is rebuilt.
        recharacterize: RecharacterizePolicy,
    },
}

/// When and from what an open-loop engine rebuilds its distortion
/// characteristic curve.
#[derive(Debug, Clone)]
pub struct RecharacterizePolicy {
    /// Rebuild after this many served frames since the last rebuild;
    /// `None` disables the periodic trigger.
    pub interval: Option<u64>,
    /// Rebuild after this many drift fallbacks since the last rebuild;
    /// `None` disables the drift trigger.
    pub drift_limit: Option<u64>,
    /// Sample every Nth served frame's histogram into the traffic sketch
    /// (must be nonzero).
    pub sample_period: u64,
    /// How many sampled histograms the rolling sketch retains (must be
    /// nonzero); older samples are overwritten ring-buffer style.
    pub sample_capacity: usize,
    /// Target dynamic ranges evaluated per sketched histogram when
    /// rebuilding the curve (each must be in `[2, 256]`).
    pub ranges: Vec<u32>,
    /// Look ranges up on the worst-case (upper envelope) fit instead of
    /// the average fit. Conservative lookups dim less aggressively but
    /// drift less often.
    pub conservative: bool,
    /// A rebuilt curve is only swapped in when its predictions differ from
    /// the installed curve's by more than this (largest absolute
    /// distortion delta over `ranges`, average or worst-case fit).
    /// Swapping bumps the cache-key generation and thereby invalidates
    /// every cached fit, so statistically identical rebuilds — e.g. drift
    /// triggers firing on stationary but heterogeneous traffic — are
    /// discarded instead of wiping the cache. 0 swaps unconditionally.
    pub min_swap_delta: f64,
}

impl Default for RecharacterizePolicy {
    fn default() -> Self {
        RecharacterizePolicy {
            interval: Some(512),
            drift_limit: Some(32),
            sample_period: 8,
            sample_capacity: 16,
            ranges: DEFAULT_RANGES.to_vec(),
            conservative: true,
            min_swap_delta: 0.002,
        }
    }
}

/// A bounded ring buffer of recent traffic histograms — what the background
/// re-characterization rebuilds the curve from. A histogram is 256 counters,
/// so the whole sketch stays a few KiB regardless of frame size.
#[derive(Debug)]
pub(crate) struct TrafficSketch {
    ring: Vec<Histogram>,
    capacity: usize,
    next: usize,
}

impl TrafficSketch {
    pub(crate) fn new(capacity: usize) -> Self {
        TrafficSketch {
            ring: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            next: 0,
        }
    }

    /// Records a histogram, overwriting the oldest sample once full.
    pub(crate) fn push(&mut self, histogram: Histogram) {
        if self.ring.len() < self.capacity {
            self.ring.push(histogram);
        } else {
            self.ring[self.next] = histogram;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// A point-in-time copy of the sketched histograms (order is
    /// irrelevant to the curve fit).
    pub(crate) fn snapshot(&self) -> Vec<Histogram> {
        self.ring.clone()
    }
}

/// The currently installed curve: the open-loop policy built around it, the
/// shared characteristic itself, and the generation stamped into cache keys
/// while it is current. Generation and curve travel together so a serve
/// that snapshots this state keys and fits coherently even when an install
/// lands mid-serve.
#[derive(Debug)]
pub(crate) struct CurveState {
    /// The open-loop HEBS policy (characteristic lookup + one evaluation).
    pub(crate) policy: HebsPolicy,
    /// The curve the policy looks ranges up on.
    pub(crate) characteristic: Arc<DistortionCharacteristic>,
    /// The cache-key generation of fits made under this curve.
    pub(crate) generation: u64,
}

/// Shared open-loop serving state: the swappable curve slot, the traffic
/// sketch, and the rebuild triggers. All methods are safe to call from any
/// worker; the slot swap is the only write the serve path ever waits on,
/// and it is a single `Arc` store.
#[derive(Debug)]
pub(crate) struct OpenLoopState {
    pub(crate) recharacterize: RecharacterizePolicy,
    /// ArcSwap-style slot: load = clone under a short lock, store =
    /// replace. Workers serve off their loaded `Arc` while a rebuild swaps.
    slot: Mutex<Option<Arc<CurveState>>>,
    /// Allocator for curve generations (the *installed* generation lives
    /// inside the slot's [`CurveState`] so curve and generation are read
    /// coherently; this counter only hands out the next one).
    generation: AtomicU64,
    sketch: Mutex<TrafficSketch>,
    /// Frames served since the last (re)characterization.
    frames_since: AtomicU64,
    /// Drift fallbacks since the last (re)characterization.
    drift_since: AtomicU64,
    /// Single-flight marker for rebuilds: one worker rebuilds, the others
    /// keep serving.
    rebuilding: AtomicBool,
    /// Rebuild attempts claimed so far. Gates the bootstrap trigger: once
    /// a first characterization has been attempted (successful or not),
    /// only the interval/drift triggers schedule further rebuilds, so a
    /// failing bootstrap cannot retry on every serve.
    attempts: AtomicU64,
    /// Whether the configured measure supports histogram-domain
    /// characterization (windowed measures decline; the sketch is then
    /// never rebuilt and only installed curves are used).
    pub(crate) histogram_capable: bool,
}

impl OpenLoopState {
    pub(crate) fn new(recharacterize: RecharacterizePolicy, histogram_capable: bool) -> Self {
        let sketch = TrafficSketch::new(recharacterize.sample_capacity);
        OpenLoopState {
            recharacterize,
            slot: Mutex::new(None),
            generation: AtomicU64::new(0),
            sketch: Mutex::new(sketch),
            frames_since: AtomicU64::new(0),
            drift_since: AtomicU64::new(0),
            rebuilding: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            histogram_capable,
        }
    }

    /// The currently installed curve (with its generation), if any.
    pub(crate) fn current(&self) -> Option<Arc<CurveState>> {
        self.slot.lock().expect("curve slot lock").clone()
    }

    /// Generation of the installed curve (0 before the first install).
    pub(crate) fn generation(&self) -> u64 {
        self.current().map_or(0, |curve| curve.generation)
    }

    /// Installs a curve: builds the open-loop policy around it, stamps it
    /// with the next key generation and resets the rebuild triggers.
    /// Returns the new generation.
    pub(crate) fn install(
        &self,
        config: PipelineConfig,
        characteristic: Arc<DistortionCharacteristic>,
    ) -> u64 {
        let policy = HebsPolicy::open_loop_shared(
            config,
            Arc::clone(&characteristic),
            self.recharacterize.conservative,
        );
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let state = Arc::new(CurveState {
            policy,
            characteristic,
            generation,
        });
        *self.slot.lock().expect("curve slot lock") = Some(state);
        self.reset_triggers();
        generation
    }

    /// Clears the rebuild trigger counters (after a rebuild, successful or
    /// abandoned, so a failed characterization does not retry every frame).
    pub(crate) fn reset_triggers(&self) {
        self.frames_since.store(0, Ordering::Relaxed);
        self.drift_since.store(0, Ordering::Relaxed);
    }

    /// Records one served frame: advances the rebuild triggers, counts a
    /// drift fallback, and samples the frame's histogram into the sketch
    /// every `sample_period` frames. `histogram` is the serve path's
    /// already-computed histogram of `frame` when it has one — sampling
    /// then clones 256 counters instead of re-reading the pixels.
    pub(crate) fn record_serve(
        &self,
        frame: &GrayImage,
        histogram: Option<&Histogram>,
        fallback: bool,
    ) {
        let frames = self.frames_since.fetch_add(1, Ordering::Relaxed) + 1;
        if fallback {
            self.drift_since.fetch_add(1, Ordering::Relaxed);
        }
        if frames % self.recharacterize.sample_period == 0 {
            let sample = match histogram {
                Some(histogram) => histogram.clone(),
                None => Histogram::of(frame),
            };
            self.sketch
                .lock()
                .expect("traffic sketch lock")
                .push(sample);
        }
    }

    /// Whether a sketch-based rebuild should be attempted now: the measure
    /// must be histogram-capable, the sketch non-empty, and a trigger due —
    /// the frame interval, the drift limit, or bootstrap (no curve yet and
    /// no attempt made; after a failed first attempt only the interval and
    /// drift triggers reschedule, so a failing characterization cannot
    /// retry on every serve).
    pub(crate) fn rebuild_due(&self) -> bool {
        if !self.histogram_capable {
            return false;
        }
        let frames = self.frames_since.load(Ordering::Relaxed);
        let interval_due = self.recharacterize.interval.is_some_and(|n| frames >= n);
        let drift_due = self
            .recharacterize
            .drift_limit
            .is_some_and(|n| self.drift_since.load(Ordering::Relaxed) >= n);
        let bootstrap_due = self.generation() == 0 && self.attempts.load(Ordering::Relaxed) == 0;
        if !(interval_due || drift_due || bootstrap_due) {
            return false;
        }
        !self.sketch.lock().expect("traffic sketch lock").is_empty()
    }

    /// Claims the single-flight rebuild marker (counting the attempt).
    /// Returns `false` when another worker is already rebuilding.
    pub(crate) fn begin_rebuild(&self) -> bool {
        let claimed = self
            .rebuilding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if claimed {
            self.attempts.fetch_add(1, Ordering::Relaxed);
        }
        claimed
    }

    /// Releases the rebuild marker.
    pub(crate) fn end_rebuild(&self) {
        self.rebuilding.store(false, Ordering::Release);
    }

    /// A point-in-time copy of the traffic sketch.
    pub(crate) fn sketch_snapshot(&self) -> Vec<Histogram> {
        self.sketch.lock().expect("traffic sketch lock").snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram_of_level(level: u8) -> Histogram {
        Histogram::of(&GrayImage::filled(4, 4, level))
    }

    #[test]
    fn sketch_is_a_bounded_ring() {
        let mut sketch = TrafficSketch::new(3);
        assert!(sketch.is_empty());
        for level in 0..5u8 {
            sketch.push(histogram_of_level(level));
        }
        let snapshot = sketch.snapshot();
        assert_eq!(snapshot.len(), 3, "capacity bounds the sketch");
        // The oldest samples (levels 0, 1) were overwritten by 3 and 4.
        assert!(snapshot.iter().any(|h| h.count(4) > 0));
        assert!(snapshot.iter().any(|h| h.count(2) > 0));
        assert!(snapshot.iter().all(|h| h.count(0) == 0 && h.count(1) == 0));
    }

    #[test]
    fn triggers_fire_on_interval_drift_and_bootstrap() {
        let policy = RecharacterizePolicy {
            interval: Some(4),
            drift_limit: Some(2),
            sample_period: 1,
            sample_capacity: 4,
            ..RecharacterizePolicy::default()
        };
        let state = OpenLoopState::new(policy, true);
        assert!(!state.rebuild_due(), "an empty sketch never rebuilds");
        let frame = GrayImage::filled(4, 4, 100);

        // Bootstrap: one sampled frame and no curve yet.
        state.record_serve(&frame, None, false);
        assert!(state.rebuild_due(), "bootstrap fires once the sketch fills");
        state.reset_triggers();
        // Simulate the bootstrap attempt having happened (it gates the
        // bootstrap trigger off; the interval/drift triggers remain).
        assert!(state.begin_rebuild());
        state.end_rebuild();

        // Sketch retains its samples across a reset, so only the counters
        // gate the next rebuild.
        for _ in 0..3 {
            state.record_serve(&frame, None, false);
            assert!(!state.rebuild_due());
        }
        state.record_serve(&frame, None, false);
        assert!(state.rebuild_due(), "interval of 4 frames reached");
        state.reset_triggers();

        let hist = Histogram::of(&frame);
        state.record_serve(&frame, Some(&hist), true);
        assert!(!state.rebuild_due());
        state.record_serve(&frame, None, true);
        assert!(state.rebuild_due(), "drift limit of 2 fallbacks reached");
    }

    #[test]
    fn failed_bootstrap_does_not_retry_every_serve() {
        // interval/drift disabled: after the one bootstrap attempt fails,
        // nothing may reschedule a rebuild per serve.
        let policy = RecharacterizePolicy {
            interval: None,
            drift_limit: None,
            sample_period: 1,
            ..RecharacterizePolicy::default()
        };
        let state = OpenLoopState::new(policy, true);
        let frame = GrayImage::filled(4, 4, 50);
        state.record_serve(&frame, None, false);
        assert!(state.rebuild_due(), "bootstrap is due once");
        assert!(state.begin_rebuild());
        // The rebuild "fails": no install, triggers reset, marker released.
        state.reset_triggers();
        state.end_rebuild();
        for _ in 0..10 {
            state.record_serve(&frame, None, false);
            assert!(
                !state.rebuild_due(),
                "a failed bootstrap must not retry on every serve"
            );
        }
    }

    #[test]
    fn incapable_measures_never_rebuild_from_the_sketch() {
        let policy = RecharacterizePolicy {
            sample_period: 1,
            ..RecharacterizePolicy::default()
        };
        let state = OpenLoopState::new(policy, false);
        state.record_serve(&GrayImage::filled(4, 4, 9), None, true);
        assert!(!state.rebuild_due());
    }

    #[test]
    fn rebuild_marker_is_single_flight() {
        let state = OpenLoopState::new(RecharacterizePolicy::default(), true);
        assert!(state.begin_rebuild());
        assert!(!state.begin_rebuild(), "second claim must fail");
        state.end_rebuild();
        assert!(state.begin_rebuild(), "marker is reusable after release");
    }

    #[test]
    fn defaults_are_sane() {
        let policy = RecharacterizePolicy::default();
        assert!(policy.sample_period > 0);
        assert!(policy.sample_capacity > 0);
        assert!(!policy.ranges.is_empty());
        assert!(policy.ranges.iter().all(|r| (2..=256).contains(r)));
        assert!(matches!(ServingMode::default(), ServingMode::ClosedLoop));
    }

    #[test]
    fn serving_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServingMode>();
        assert_send_sync::<RecharacterizePolicy>();
        assert_send_sync::<OpenLoopState>();
    }
}
