//! Serving modes: closed-loop search vs. the paper's open-loop table lookup,
//! with per-class curves and background re-characterization.
//!
//! The HEBS hardware flow is *open-loop*: an offline-fitted distortion
//! characteristic curve maps the distortion budget straight to a dynamic
//! range, so serving a frame costs **one** fit evaluation instead of the
//! closed-loop bisection's ~8. The catch is that the curve describes the
//! traffic it was characterized on; when traffic drifts, the promised
//! distortion bound stops holding — and when the traffic is *heterogeneous*,
//! a single worst-case curve refuses to dim at all (the outlier image vetoes
//! everyone's backlight).
//!
//! [`ServingMode::OpenLoop`] closes both gaps at serving scale:
//!
//! * every cache miss fits through the open-loop policy (one evaluation);
//! * the curve slot holds a **bank** of characteristics keyed by content
//!   class ([`RecharacterizePolicy::classes`]): frames are routed by
//!   histogram-signature cluster to the curve of traffic that looks like
//!   them, which recovers most of the closed-loop saving on mixed traffic
//!   (a single-curve bank reproduces the classic flow, and
//!   [`hebs_core::CurveFit::Envelope`] is the cheap half-step in between);
//! * a per-serve *drift check* compares the measured distortion against the
//!   requesting budget — an over-budget frame falls back to the closed-loop
//!   search for that frame only, so the distortion contract always holds;
//! * each class keeps its own rolling [`TrafficSketch`] of recent frame
//!   histograms and its own rebuild triggers: every N frames and/or after
//!   enough drift fallbacks *in that class*, one worker rebuilds that
//!   class's [`DistortionCharacteristic`] from its sketch (entirely in the
//!   histogram domain) and swaps a new bank into the engine's slot while
//!   the other workers keep serving;
//! * every class carries its own *characteristic generation* that is part
//!   of every cache key (alongside the class id), so a rebuild invalidates
//!   only the affected class's cached fits.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hebs_analysis::{interleave, lock_healthy, LockClass, OrderedMutex};

use hebs_core::{
    CharacteristicBank, CurveFit, DistortionCharacteristic, HebsPolicy, PipelineConfig,
    DEFAULT_RANGES,
};
use hebs_imaging::{Histogram, HistogramSignature, SIGNATURE_BINS};

/// How the engine turns a distortion budget into a fitted transform on a
/// cache miss.
#[derive(Debug, Clone, Default)]
pub enum ServingMode {
    /// Bisect over target ranges per miss so the distortion bound is met
    /// exactly (~8 fit evaluations per miss). The default.
    #[default]
    ClosedLoop,
    /// Look the range up on a (per-class) distortion characteristic curve
    /// (one fit evaluation per miss), fall back to the closed-loop search
    /// for frames whose measured distortion drifts over the budget, and
    /// periodically re-characterize each class's curve from its recent
    /// traffic.
    OpenLoop {
        /// When and from what the curves are rebuilt, and how many content
        /// classes the bank holds.
        recharacterize: RecharacterizePolicy,
    },
}

/// When and from what an open-loop engine rebuilds its distortion
/// characteristic curves. The `interval`/`drift_limit` triggers and the
/// sketch are **per content class**: a drifting class rebuilds (and
/// invalidates) only itself.
#[derive(Debug, Clone)]
pub struct RecharacterizePolicy {
    /// Rebuild a class after this many frames served in it since its last
    /// rebuild; `None` disables the periodic trigger.
    pub interval: Option<u64>,
    /// Rebuild a class after this many drift fallbacks in it since its last
    /// rebuild; `None` disables the drift trigger.
    pub drift_limit: Option<u64>,
    /// Sample every Nth served frame's histogram into its class's traffic
    /// sketch (must be nonzero; the counter is per class).
    pub sample_period: u64,
    /// How many sampled histograms each class's rolling sketch retains
    /// (must be nonzero); older samples are overwritten ring-buffer style.
    /// With multiple classes this sets the pooled budget (`classes ×
    /// sample_capacity`): after each rebuild the pool is re-partitioned in
    /// proportion to each class's observed traffic share (with a small
    /// per-class floor), so a hot class keeps a deeper history while rare
    /// classes still fill fast enough to rebuild.
    pub sample_capacity: usize,
    /// Target dynamic ranges evaluated per sketched histogram when
    /// rebuilding a curve (each must be in `[2, 256]`).
    pub ranges: Vec<u32>,
    /// Which fit ranges are looked up on: the worst-case envelope (default;
    /// never drifts on characterized traffic but refuses to dim when a
    /// class is still heterogeneous), the p95 envelope (the half-step), or
    /// the average fit (dims hardest, drifts most).
    pub fit: CurveFit,
    /// Number of content classes the characteristic bank holds (must be
    /// nonzero). 1 reproduces the classic single-curve flow; a handful of
    /// classes lets heterogeneous traffic dim per histogram-shape cluster.
    /// The bootstrap re-characterization clusters the sketch into at most
    /// this many classes; [`Engine::install_bank`](crate::Engine) seeds
    /// them offline.
    pub classes: usize,
    /// A rebuilt curve is only swapped in when its predictions differ from
    /// the installed class's curve by more than this (largest absolute
    /// distortion delta over `ranges`, any fit). Swapping bumps that
    /// class's cache-key generation and thereby invalidates its cached
    /// fits, so statistically identical rebuilds — e.g. drift triggers
    /// firing on stationary but heterogeneous traffic — are discarded
    /// instead of wiping the class. 0 swaps unconditionally.
    pub min_swap_delta: f64,
}

impl Default for RecharacterizePolicy {
    fn default() -> Self {
        RecharacterizePolicy {
            interval: Some(512),
            drift_limit: Some(32),
            sample_period: 8,
            sample_capacity: 16,
            ranges: DEFAULT_RANGES.to_vec(),
            fit: CurveFit::WorstCase,
            classes: 1,
            min_swap_delta: 0.002,
        }
    }
}

impl RecharacterizePolicy {
    /// Returns the policy with a different class count.
    pub fn with_classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Returns the policy with a different lookup fit.
    pub fn with_fit(mut self, fit: CurveFit) -> Self {
        self.fit = fit;
        self
    }
}

/// A bounded ring buffer of recent traffic histograms — what the background
/// re-characterization rebuilds a class's curve from. A histogram is 256
/// counters, so a whole per-class sketch stays a few KiB regardless of
/// frame size.
#[derive(Debug)]
pub(crate) struct TrafficSketch {
    ring: Vec<Histogram>,
    capacity: usize,
    next: usize,
}

impl TrafficSketch {
    pub(crate) fn new(capacity: usize) -> Self {
        TrafficSketch {
            ring: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            next: 0,
        }
    }

    /// Records a histogram, overwriting the oldest sample once full.
    pub(crate) fn push(&mut self, histogram: Histogram) {
        if self.ring.len() < self.capacity {
            self.ring.push(histogram);
        } else {
            self.ring[self.next] = histogram;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Current sample capacity.
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resizes the ring, keeping the **most recent** samples when
    /// shrinking (used by the traffic-share rebalancing — see
    /// [`OpenLoopState::rebalance_sketch_capacities`]).
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        let capacity = capacity.max(1);
        if capacity == self.capacity {
            return;
        }
        // Reconstruct chronological order (oldest first), keep the newest
        // `capacity` samples, and restart the ring from them.
        let mut chronological: Vec<Histogram> = if self.ring.len() == self.capacity {
            let mut newest_first = self.ring.split_off(self.next);
            newest_first.append(&mut self.ring);
            newest_first
        } else {
            std::mem::take(&mut self.ring)
        };
        if chronological.len() > capacity {
            chronological.drain(..chronological.len() - capacity);
        }
        self.next = if chronological.len() < capacity {
            chronological.len()
        } else {
            0
        };
        self.ring = chronological;
        self.capacity = capacity;
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// A point-in-time copy of the sketched histograms (order is
    /// irrelevant to the curve fit).
    pub(crate) fn snapshot(&self) -> Vec<Histogram> {
        self.ring.clone()
    }
}

/// One class's installed curve: the open-loop policy built around it, the
/// shared characteristic itself, and the generation stamped into cache keys
/// while it is current. Generation and curve travel together so a serve
/// that snapshots this state keys and fits coherently even when an install
/// lands mid-serve.
#[derive(Debug)]
pub(crate) struct CurveState {
    /// The open-loop HEBS policy (characteristic lookup + one evaluation).
    pub(crate) policy: HebsPolicy,
    /// The curve the policy looks ranges up on.
    pub(crate) characteristic: Arc<DistortionCharacteristic>,
    /// The cache-key generation of fits made under this curve.
    pub(crate) generation: u64,
}

/// The installed characteristic bank: one [`CurveState`] per content class
/// plus the cluster centroids frames are routed by. A single-class bank has
/// no centroids and skips classification entirely (the classic flow).
#[derive(Debug)]
pub(crate) struct CurveBank {
    /// Per-class curve states, indexed by class id.
    pub(crate) classes: Vec<Arc<CurveState>>,
    /// Cluster centroids in signature-bin space; empty for a single class.
    centroids: Vec<[f64; SIGNATURE_BINS]>,
}

impl CurveBank {
    /// Whether the bank needs no classification (exactly one class).
    pub(crate) fn is_single(&self) -> bool {
        self.classes.len() == 1
    }

    /// The class a histogram signature routes to — the same
    /// nearest-centroid metric the bank was clustered with
    /// ([`hebs_core::nearest_centroid`]), so a frame always lands on the
    /// class whose curve was fitted on traffic shaped like it.
    pub(crate) fn classify(&self, signature: &HistogramSignature) -> usize {
        if self.is_single() {
            return 0;
        }
        hebs_core::nearest_centroid(signature, self.centroids.iter())
    }

    /// The largest class generation in the bank (what
    /// `Engine::characteristic_generation` reports).
    pub(crate) fn max_generation(&self) -> u64 {
        self.classes.iter().map(|c| c.generation).max().unwrap_or(0)
    }

    /// The installed cluster centroids (empty for a single-class bank);
    /// what a snapshot persists so a restored bank routes frames
    /// identically.
    pub(crate) fn centroids(&self) -> &[[f64; SIGNATURE_BINS]] {
        &self.centroids
    }
}

/// Per-class rebuild trigger counters.
#[derive(Debug, Default)]
struct ClassTriggers {
    /// Frames served in this class since its last (re)characterization.
    frames_since: AtomicU64,
    /// Drift fallbacks in this class since its last (re)characterization.
    drift_since: AtomicU64,
    /// Frames ever served in this class — never reset (unlike the trigger
    /// counters above), so the traffic-share sketch rebalancing sees the
    /// long-run class mix rather than the slice since the last rebuild.
    served_total: AtomicU64,
}

/// What kind of rebuild is due (see [`OpenLoopState::rebuild_plan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RebuildPlan {
    /// No bank installed yet: cluster the pre-bank sketch into a fresh bank.
    Bootstrap,
    /// Rebuild one class's curve from its own sketch.
    Class(usize),
}

/// Shared open-loop serving state: the swappable bank slot, the per-class
/// traffic sketches, and the per-class rebuild triggers. All methods are
/// safe to call from any worker; the slot swap is the only write the serve
/// path ever waits on, and it is a single `Arc` store.
#[derive(Debug)]
pub(crate) struct OpenLoopState {
    pub(crate) recharacterize: RecharacterizePolicy,
    /// ArcSwap-style slot: load = clone under a short lock, store =
    /// replace. Workers serve off their loaded `Arc` while a rebuild swaps.
    slot: OrderedMutex<Option<Arc<CurveBank>>>,
    /// Allocator for curve generations (the *installed* generations live
    /// inside the bank's [`CurveState`]s so curve and generation are read
    /// coherently; this counter only hands out the next one).
    generation: AtomicU64,
    /// One rolling sketch per configured class. Before a bank exists every
    /// frame classifies to class 0, so the bootstrap clustering reads
    /// sketch 0.
    sketches: Vec<OrderedMutex<TrafficSketch>>,
    /// Per-class rebuild trigger counters.
    triggers: Vec<ClassTriggers>,
    /// Single-flight marker for rebuilds: one worker rebuilds, the others
    /// keep serving.
    rebuilding: AtomicBool,
    /// Rebuild attempts claimed so far. Gates the bootstrap trigger: once
    /// a first characterization has been attempted (successful or not),
    /// only the interval/drift triggers schedule further rebuilds, so a
    /// failing bootstrap cannot retry on every serve.
    attempts: AtomicU64,
    /// Whether the configured measure supports histogram-domain
    /// characterization (windowed measures decline; the sketches are then
    /// never rebuilt and only installed curves are used).
    pub(crate) histogram_capable: bool,
    /// Poisoned-lock recoveries performed by slot/sketch accessors (see
    /// `EngineStats::poison_recoveries`).
    poison_recoveries: AtomicU64,
}

impl OpenLoopState {
    pub(crate) fn new(recharacterize: RecharacterizePolicy, histogram_capable: bool) -> Self {
        let classes = recharacterize.classes.max(1);
        let capacity = recharacterize.sample_capacity;
        OpenLoopState {
            recharacterize,
            slot: OrderedMutex::new(LockClass::OpenLoopSlot, None),
            generation: AtomicU64::new(0),
            sketches: (0..classes)
                .map(|_| OrderedMutex::new(LockClass::Sketch, TrafficSketch::new(capacity)))
                .collect(),
            triggers: (0..classes).map(|_| ClassTriggers::default()).collect(),
            rebuilding: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            histogram_capable,
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Counts one poisoned-lock recovery (see `EngineStats::poison_recoveries`).
    fn note_poison(&self) {
        self.poison_recoveries.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
    }

    /// Poisoned-lock recoveries performed by this state's accessors.
    pub(crate) fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed) // ordering: advisory snapshot
    }

    /// Number of content classes the state is provisioned for.
    pub(crate) fn class_count(&self) -> usize {
        self.triggers.len()
    }

    /// The currently installed bank, if any.
    pub(crate) fn current(&self) -> Option<Arc<CurveBank>> {
        lock_healthy(self.slot.lock(), || self.note_poison()).clone()
    }

    /// Largest generation of the installed bank (0 before the first
    /// install).
    pub(crate) fn generation(&self) -> u64 {
        self.current().map_or(0, |bank| bank.max_generation())
    }

    /// Builds a [`CurveState`] for a curve under the configured fit,
    /// stamped with the next key generation.
    fn curve_state(
        &self,
        config: PipelineConfig,
        characteristic: Arc<DistortionCharacteristic>,
    ) -> Arc<CurveState> {
        let policy = HebsPolicy::open_loop_with_fit(
            config,
            Arc::clone(&characteristic),
            self.recharacterize.fit,
        );
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        Arc::new(CurveState {
            policy,
            characteristic,
            generation,
        })
    }

    /// Installs a single-curve bank (the classic flow): builds the
    /// open-loop policy around it, stamps it with the next key generation
    /// and resets every class's rebuild triggers and sketches. Returns the
    /// new generation.
    pub(crate) fn install(
        &self,
        config: PipelineConfig,
        characteristic: Arc<DistortionCharacteristic>,
    ) -> u64 {
        let state = self.curve_state(config, characteristic);
        let generation = state.generation;
        let bank = Arc::new(CurveBank {
            classes: vec![state],
            centroids: Vec::new(),
        });
        interleave::point("openloop.swap");
        *lock_healthy(self.slot.lock(), || self.note_poison()) = Some(bank);
        self.reset_after_install();
        generation
    }

    /// Installs a full bank: one curve state (and fresh generation) per
    /// class, centroids taken from the bank's clustering. Returns the
    /// largest new generation.
    pub(crate) fn install_bank(&self, config: &PipelineConfig, bank: &CharacteristicBank) -> u64 {
        let classes: Vec<Arc<CurveState>> = bank
            .classes()
            .iter()
            .map(|class| self.curve_state(config.clone(), Arc::clone(&class.characteristic)))
            .collect();
        let centroids = if classes.len() > 1 {
            bank.classes().iter().map(|c| c.centroid).collect()
        } else {
            Vec::new()
        };
        let bank = Arc::new(CurveBank { classes, centroids });
        let generation = bank.max_generation();
        interleave::point("openloop.swap");
        *lock_healthy(self.slot.lock(), || self.note_poison()) = Some(bank);
        self.reset_after_install();
        generation
    }

    /// Replaces one class's curve in the installed bank (keeping every
    /// other class's state and generation), used by the per-class
    /// background rebuild. Returns the class's new generation, or `None`
    /// when no bank is installed or the class is out of range.
    pub(crate) fn install_class(
        &self,
        class: usize,
        config: PipelineConfig,
        characteristic: Arc<DistortionCharacteristic>,
    ) -> Option<u64> {
        let state = self.curve_state(config, characteristic);
        let generation = state.generation;
        interleave::point("openloop.swap");
        let mut slot = lock_healthy(self.slot.lock(), || self.note_poison());
        let bank = slot.as_ref()?;
        if class >= bank.classes.len() {
            return None;
        }
        let mut classes = bank.classes.clone();
        classes[class] = state;
        *slot = Some(Arc::new(CurveBank {
            classes,
            centroids: bank.centroids.clone(),
        }));
        Some(generation)
    }

    /// Clears every class's rebuild trigger counters **and traffic
    /// sketches** after a bank install: the previous counts described
    /// curves that no longer exist, and the sketched histograms were routed
    /// under the previous clustering (pre-bank traffic all sat in class 0).
    /// A later per-class rebuild refitting from another clustering's
    /// histograms would re-create exactly the pooled-curve veto the bank
    /// exists to remove. Per-class rebuilds ([`OpenLoopState::
    /// install_class`]) keep their sketches — routing is unchanged there.
    fn reset_after_install(&self) {
        for trigger in &self.triggers {
            trigger.frames_since.store(0, Ordering::Release); // ordering: pairs with the Acquire trigger reads so the reset is seen with the install
            trigger.drift_since.store(0, Ordering::Release); // ordering: pairs with the Acquire trigger reads so the reset is seen with the install
        }
        for sketch in &self.sketches {
            *lock_healthy(sketch.lock(), || self.note_poison()) =
                TrafficSketch::new(self.recharacterize.sample_capacity);
        }
    }

    /// A point-in-time read of one class's trigger counters
    /// `(frames_since, drift_since)` — what a rebuild observed when it was
    /// triggered, and therefore what [`OpenLoopState::consume_triggers`]
    /// subtracts when it completes.
    pub(crate) fn observed_triggers(&self, class: usize) -> (u64, u64) {
        let trigger = &self.triggers[class];
        (
            trigger.frames_since.load(Ordering::Acquire), // ordering: a rebuild's observation pairs with the serve path's Release increments
            trigger.drift_since.load(Ordering::Acquire), // ordering: a rebuild's observation pairs with the serve path's Release increments
        )
    }

    /// Consumes the trigger counts a completed rebuild *observed*, leaving
    /// anything recorded while the rebuild ran. Subtracting (rather than
    /// storing zero) keeps concurrent workers' fallbacks from being
    /// silently dropped — a dropped fallback would delay the next
    /// drift-triggered rebuild.
    pub(crate) fn consume_triggers(&self, class: usize, frames: u64, drifts: u64) {
        let trigger = &self.triggers[class];
        let _ = trigger
            .frames_since
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(frames))
            });
        let _ = trigger
            .drift_since
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(drifts))
            });
    }

    /// Records one served frame in its class: advances the class's rebuild
    /// triggers, counts a drift fallback, and samples the frame's histogram
    /// into the class's sketch every `sample_period` frames. `histogram` is
    /// the serve path's fused-ingest histogram of the frame — sampling
    /// clones 256 counters and never re-reads the pixels.
    pub(crate) fn record_serve(&self, class: usize, histogram: &Histogram, fallback: bool) {
        let trigger = &self.triggers[class];
        // ordering: Release publishes the serve (and its sketch sample, pushed
        // below under the sketch lock) before the trigger count a rebuild
        // decision Acquires.
        let frames = trigger.frames_since.fetch_add(1, Ordering::Release) + 1;
        trigger.served_total.fetch_add(1, Ordering::Relaxed); // ordering: statistical tally for rebalancing, nothing published
        if fallback {
            // ordering: Release pairs with the drift-trigger Acquire reads.
            trigger.drift_since.fetch_add(1, Ordering::Release);
        }
        if frames % self.recharacterize.sample_period == 0 {
            lock_healthy(self.sketches[class].lock(), || self.note_poison())
                .push(histogram.clone()); // lint: allow(hot-path-alloc) -- sampled once per sample_period frames; the sketch must own its copy beyond the serve
        }
    }

    /// Whether one class's interval/drift triggers are due.
    fn class_due(&self, class: usize) -> bool {
        let trigger = &self.triggers[class];
        // ordering: Acquire pairs with the serve path's Release increments so
        // a due decision sees the serves (and sketch samples) that caused it.
        let frames = trigger.frames_since.load(Ordering::Acquire);
        let interval_due = self.recharacterize.interval.is_some_and(|n| frames >= n);
        let drift_due = self
            .recharacterize
            .drift_limit
            .is_some_and(|n| trigger.drift_since.load(Ordering::Acquire) >= n); // ordering: pairs with the fallback's Release increment
        interval_due || drift_due
    }

    /// What rebuild (if any) should be attempted now: the measure must be
    /// histogram-capable and the relevant sketch non-empty. With no bank
    /// installed, the bootstrap fires once (and the class-0 interval/drift
    /// triggers reschedule after a failed first attempt, so a failing
    /// characterization cannot retry on every serve); with a bank, the
    /// first class whose own triggers are due is rebuilt.
    pub(crate) fn rebuild_plan(&self) -> Option<RebuildPlan> {
        if !self.histogram_capable {
            return None;
        }
        let Some(bank) = self.current() else {
            let bootstrap_due = self.attempts.load(Ordering::Relaxed) == 0; // ordering: advisory gate; the begin_rebuild CAS arbitrates
            if !(bootstrap_due || self.class_due(0)) {
                return None;
            }
            let ready = !lock_healthy(self.sketches[0].lock(), || self.note_poison()).is_empty();
            return ready.then_some(RebuildPlan::Bootstrap);
        };
        for class in 0..bank.classes.len().min(self.class_count()) {
            if self.class_due(class)
                && !lock_healthy(self.sketches[class].lock(), || self.note_poison()).is_empty()
            {
                return Some(RebuildPlan::Class(class));
            }
        }
        None
    }

    /// Backwards-compatible probe: whether any rebuild is due.
    #[cfg(test)]
    pub(crate) fn rebuild_due(&self) -> bool {
        self.rebuild_plan().is_some()
    }

    /// Claims the single-flight rebuild marker (counting the attempt).
    /// Returns `false` when another worker is already rebuilding.
    pub(crate) fn begin_rebuild(&self) -> bool {
        interleave::point("openloop.begin_rebuild");
        let claimed = self
            .rebuilding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed) // ordering: failure is Relaxed — a losing worker just keeps serving
            .is_ok();
        if claimed {
            self.attempts.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally behind the Acquire CAS
        }
        claimed
    }

    /// Releases the rebuild marker.
    pub(crate) fn end_rebuild(&self) {
        self.rebuilding.store(false, Ordering::Release);
    }

    /// A point-in-time copy of one class's traffic sketch.
    pub(crate) fn sketch_snapshot(&self, class: usize) -> Vec<Histogram> {
        lock_healthy(self.sketches[class].lock(), || self.note_poison()).snapshot()
    }

    /// Current sample capacity of one class's sketch.
    #[cfg(test)]
    pub(crate) fn sketch_capacity(&self, class: usize) -> usize {
        lock_healthy(self.sketches[class].lock(), || self.note_poison()).capacity()
    }

    /// Re-partitions the pooled sketch budget (`classes ×
    /// sample_capacity`) across classes in proportion to each class's
    /// observed share of served traffic, on top of a small per-class floor.
    ///
    /// With uniform per-class capacities, skewed traffic starves rare
    /// classes: a class seeing 1% of frames takes 100× longer to fill the
    /// same ring, so its rebuilds fit on stale (or too few) samples while
    /// the hot class's ring overwrites fresh samples it has no use for.
    /// Weighting capacity by served share gives the hot class a deeper
    /// history (better rebuild fidelity where it matters) while the floor
    /// keeps every rare class able to rebuild at all. Resizing keeps each
    /// ring's most recent samples. Single-class states are left alone.
    pub(crate) fn rebalance_sketch_capacities(&self) {
        let classes = self.sketches.len();
        if classes <= 1 {
            return;
        }
        let served: Vec<u64> = self
            .triggers
            .iter()
            .map(|trigger| trigger.served_total.load(Ordering::Relaxed)) // ordering: statistical share estimate, exactness not required
            .collect();
        let total: u64 = served.iter().sum();
        if total == 0 {
            return;
        }
        let per_class = self.recharacterize.sample_capacity;
        let budget = per_class * classes;
        let floor = per_class.min(4);
        let spread = budget - floor * classes;
        let mut shares: Vec<usize> = served
            .iter()
            .map(|&count| (spread as u128 * u128::from(count) / u128::from(total)) as usize)
            .collect();
        // Integer division under-assigns; hand the leftover to the hottest
        // class so the pooled budget is preserved exactly.
        let leftover = spread - shares.iter().sum::<usize>();
        if let Some((hottest, _)) = served.iter().enumerate().max_by_key(|&(_, &count)| count) {
            shares[hottest] += leftover;
        }
        for (class, sketch) in self.sketches.iter().enumerate() {
            lock_healthy(sketch.lock(), || self.note_poison()).set_capacity(floor + shares[class]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::GrayImage;

    fn histogram_of_level(level: u8) -> Histogram {
        Histogram::of(&GrayImage::filled(4, 4, level))
    }

    fn state_with(policy: RecharacterizePolicy) -> OpenLoopState {
        OpenLoopState::new(policy, true)
    }

    #[test]
    fn sketching_a_serve_reads_no_frame_pixels() {
        // The sketch push clones the histogram the serve's fused ingest
        // already produced; it must never re-traverse the frame. Pinned via
        // the thread-local traversal counter, with every serve sampled.
        let state = state_with(RecharacterizePolicy {
            sample_period: 1,
            ..RecharacterizePolicy::default()
        });
        let histogram = histogram_of_level(90);
        let before = hebs_imaging::traversals::count();
        for _ in 0..8 {
            state.record_serve(0, &histogram, false);
        }
        assert_eq!(hebs_imaging::traversals::count(), before);
    }

    /// Installs a throwaway single-class bank so per-class triggers (rather
    /// than the bootstrap) drive `rebuild_plan`.
    fn dummy_samples() -> Vec<hebs_core::CharacterizationSample> {
        (1..=5)
            .map(|i| hebs_core::CharacterizationSample {
                image: format!("s{i}"),
                dynamic_range: 50 * i,
                distortion: 0.3 - 0.05 * f64::from(i),
                power_saving: 0.4,
            })
            .collect()
    }

    fn install_dummy_curve(state: &OpenLoopState) {
        let curve = DistortionCharacteristic::from_samples(dummy_samples()).unwrap();
        state.install(PipelineConfig::default(), Arc::new(curve));
    }

    #[test]
    fn sketch_is_a_bounded_ring() {
        let mut sketch = TrafficSketch::new(3);
        assert!(sketch.is_empty());
        for level in 0..5u8 {
            sketch.push(histogram_of_level(level));
        }
        let snapshot = sketch.snapshot();
        assert_eq!(snapshot.len(), 3, "capacity bounds the sketch");
        // The oldest samples (levels 0, 1) were overwritten by 3 and 4.
        assert!(snapshot.iter().any(|h| h.count(4) > 0));
        assert!(snapshot.iter().any(|h| h.count(2) > 0));
        assert!(snapshot.iter().all(|h| h.count(0) == 0 && h.count(1) == 0));
    }

    #[test]
    fn triggers_fire_on_interval_drift_and_bootstrap() {
        let policy = RecharacterizePolicy {
            interval: Some(4),
            drift_limit: Some(2),
            sample_period: 1,
            sample_capacity: 4,
            ..RecharacterizePolicy::default()
        };
        let state = state_with(policy);
        assert!(!state.rebuild_due(), "an empty sketch never rebuilds");
        let frame = GrayImage::filled(4, 4, 100);

        // Bootstrap: one sampled frame and no bank yet.
        state.record_serve(0, &Histogram::of(&frame), false);
        assert_eq!(state.rebuild_plan(), Some(RebuildPlan::Bootstrap));
        // Simulate the bootstrap attempt succeeding: a bank installs and
        // resets the triggers; from here the per-class triggers gate.
        assert!(state.begin_rebuild());
        install_dummy_curve(&state);
        state.end_rebuild();

        // The install cleared the sketch (its samples were routed under
        // the pre-bank clustering); sample_period 1 refills it while the
        // interval counter climbs toward the next rebuild.
        for _ in 0..3 {
            state.record_serve(0, &Histogram::of(&frame), false);
            assert!(!state.rebuild_due());
        }
        state.record_serve(0, &Histogram::of(&frame), false);
        assert_eq!(
            state.rebuild_plan(),
            Some(RebuildPlan::Class(0)),
            "interval of 4 frames reached"
        );
        let (frames, drifts) = state.observed_triggers(0);
        state.consume_triggers(0, frames, drifts);

        let hist = Histogram::of(&frame);
        state.record_serve(0, &hist, true);
        assert!(!state.rebuild_due());
        state.record_serve(0, &Histogram::of(&frame), true);
        assert_eq!(
            state.rebuild_plan(),
            Some(RebuildPlan::Class(0)),
            "drift limit of 2 fallbacks reached"
        );
    }

    /// Regression for the dropped-fallback bug: fallbacks recorded while a
    /// rebuild is in flight must survive the rebuild's trigger consumption
    /// (the old code stored 0, silently discarding them and delaying the
    /// next drift-triggered rebuild).
    #[test]
    fn fallbacks_recorded_during_a_rebuild_are_not_dropped() {
        let policy = RecharacterizePolicy {
            interval: None,
            drift_limit: Some(2),
            sample_period: 1,
            ..RecharacterizePolicy::default()
        };
        let state = state_with(policy);
        install_dummy_curve(&state);
        let frame = GrayImage::filled(4, 4, 80);

        // Two fallbacks trip the drift trigger.
        state.record_serve(0, &Histogram::of(&frame), true);
        state.record_serve(0, &Histogram::of(&frame), true);
        assert_eq!(state.rebuild_plan(), Some(RebuildPlan::Class(0)));
        assert!(state.begin_rebuild());
        let (frames, drifts) = state.observed_triggers(0);
        assert_eq!(drifts, 2);

        // While the rebuild runs, concurrent workers record two more
        // fallbacks.
        state.record_serve(0, &Histogram::of(&frame), true);
        state.record_serve(0, &Histogram::of(&frame), true);

        // The rebuild finishes and consumes only what it observed.
        state.consume_triggers(0, frames, drifts);
        state.end_rebuild();
        let (_, remaining) = state.observed_triggers(0);
        assert_eq!(remaining, 2, "in-flight fallbacks must survive");
        assert_eq!(
            state.rebuild_plan(),
            Some(RebuildPlan::Class(0)),
            "the surviving fallbacks re-arm the drift trigger"
        );
    }

    #[test]
    fn failed_bootstrap_does_not_retry_every_serve() {
        // interval/drift disabled: after the one bootstrap attempt fails,
        // nothing may reschedule a rebuild per serve.
        let policy = RecharacterizePolicy {
            interval: None,
            drift_limit: None,
            sample_period: 1,
            ..RecharacterizePolicy::default()
        };
        let state = state_with(policy);
        let frame = GrayImage::filled(4, 4, 50);
        state.record_serve(0, &Histogram::of(&frame), false);
        assert!(state.rebuild_due(), "bootstrap is due once");
        assert!(state.begin_rebuild());
        // The rebuild "fails": no install, marker released.
        state.end_rebuild();
        for _ in 0..10 {
            state.record_serve(0, &Histogram::of(&frame), false);
            assert!(
                !state.rebuild_due(),
                "a failed bootstrap must not retry on every serve"
            );
        }
    }

    #[test]
    fn incapable_measures_never_rebuild_from_the_sketch() {
        let policy = RecharacterizePolicy {
            sample_period: 1,
            ..RecharacterizePolicy::default()
        };
        let state = OpenLoopState::new(policy, false);
        state.record_serve(0, &histogram_of_level(9), true);
        assert!(!state.rebuild_due());
    }

    /// Regression: a bank install must clear every class's sketch — the
    /// sketched histograms were routed under the previous clustering (all
    /// pre-bank traffic sits in class 0), and a later per-class rebuild
    /// refitting from that mixed pool would re-create the pooled-curve
    /// veto the bank exists to remove.
    #[test]
    fn installs_clear_stale_sketches_but_class_rebuilds_keep_theirs() {
        let policy = RecharacterizePolicy {
            sample_period: 1,
            classes: 2,
            ..RecharacterizePolicy::default()
        };
        let state = state_with(policy);
        // Pre-bank traffic of two different shapes lands pooled in class 0.
        state.record_serve(0, &histogram_of_level(10), false);
        state.record_serve(0, &histogram_of_level(200), false);
        assert_eq!(state.sketch_snapshot(0).len(), 2);

        install_dummy_curve(&state);
        assert!(
            state.sketch_snapshot(0).is_empty(),
            "an install must clear the stale pooled sketch"
        );

        // Post-install samples are class-routed; a per-class curve swap
        // keeps them (routing did not change).
        state.record_serve(1, &histogram_of_level(10), false);
        state.install_class(
            0,
            PipelineConfig::default(),
            Arc::new(DistortionCharacteristic::from_samples(dummy_samples()).unwrap()),
        );
        assert_eq!(
            state.sketch_snapshot(1).len(),
            1,
            "a class rebuild must not wipe other classes' sketches"
        );
    }

    #[test]
    fn rebuild_marker_is_single_flight() {
        let state = state_with(RecharacterizePolicy::default());
        assert!(state.begin_rebuild());
        assert!(!state.begin_rebuild(), "second claim must fail");
        state.end_rebuild();
        assert!(state.begin_rebuild(), "marker is reusable after release");
    }

    #[test]
    fn classes_keep_independent_sketches_and_triggers() {
        let policy = RecharacterizePolicy {
            interval: None,
            drift_limit: Some(2),
            sample_period: 1,
            classes: 2,
            ..RecharacterizePolicy::default()
        };
        let state = state_with(policy);
        assert_eq!(state.class_count(), 2);
        install_dummy_curve(&state); // single-class bank: only class 0 rebuilds
        let frame = GrayImage::filled(4, 4, 30);

        // Fallbacks recorded in class 1 never trip class 0's trigger.
        state.record_serve(1, &Histogram::of(&frame), true);
        state.record_serve(1, &Histogram::of(&frame), true);
        assert_eq!(
            state.rebuild_plan(),
            None,
            "a single-class bank only consults class 0"
        );
        let (_, class1_drifts) = state.observed_triggers(1);
        assert_eq!(class1_drifts, 2);
        assert_eq!(state.observed_triggers(0).1, 0);
        assert_eq!(state.sketch_snapshot(1).len(), 2);
        assert!(state.sketch_snapshot(0).is_empty());
    }

    #[test]
    fn install_class_replaces_one_generation_only() {
        let state = state_with(RecharacterizePolicy {
            classes: 2,
            ..RecharacterizePolicy::default()
        });
        let samples = |offset: f64| -> Vec<hebs_core::CharacterizationSample> {
            (1..=5)
                .map(|i| hebs_core::CharacterizationSample {
                    image: format!("s{i}"),
                    dynamic_range: 50 * i,
                    distortion: (0.4 - 0.05 * f64::from(i) + offset).max(0.0),
                    power_saving: 0.4,
                })
                .collect()
        };
        let curve =
            |offset| Arc::new(DistortionCharacteristic::from_samples(samples(offset)).unwrap());
        let bank = CharacteristicBank::from_classes(vec![
            hebs_core::BankClass {
                centroid: [0.0; SIGNATURE_BINS],
                characteristic: curve(0.0),
                members: 1,
            },
            hebs_core::BankClass {
                centroid: [4.0; SIGNATURE_BINS],
                characteristic: curve(0.1),
                members: 1,
            },
        ])
        .unwrap();
        state.install_bank(&PipelineConfig::default(), &bank);
        let installed = state.current().unwrap();
        let class0_generation = installed.classes[0].generation;
        let class1_generation = installed.classes[1].generation;
        assert_ne!(class0_generation, class1_generation);

        let new_generation = state
            .install_class(1, PipelineConfig::default(), curve(0.2))
            .unwrap();
        let after = state.current().unwrap();
        assert_eq!(
            after.classes[0].generation, class0_generation,
            "an untouched class keeps its generation"
        );
        assert_eq!(after.classes[1].generation, new_generation);
        assert!(new_generation > class1_generation);
        assert_eq!(state.generation(), new_generation);
    }

    #[test]
    fn set_capacity_keeps_the_most_recent_samples() {
        let mut sketch = TrafficSketch::new(4);
        for level in 0..6u8 {
            sketch.push(histogram_of_level(level));
        }
        // Ring holds levels 2..=5; shrinking to 2 must keep 4 and 5.
        sketch.set_capacity(2);
        assert_eq!(sketch.capacity(), 2);
        let snapshot = sketch.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert!(snapshot.iter().any(|h| h.count(4) > 0));
        assert!(snapshot.iter().any(|h| h.count(5) > 0));

        // Growing keeps everything and accepts new samples up to the new
        // capacity before overwriting the oldest again.
        sketch.set_capacity(3);
        sketch.push(histogram_of_level(6));
        let snapshot = sketch.snapshot();
        assert_eq!(snapshot.len(), 3);
        assert!(snapshot.iter().any(|h| h.count(4) > 0));
        assert!(snapshot.iter().any(|h| h.count(6) > 0));
        sketch.push(histogram_of_level(7));
        let snapshot = sketch.snapshot();
        assert_eq!(snapshot.len(), 3, "capacity still bounds the ring");
        assert!(
            snapshot.iter().all(|h| h.count(4) == 0),
            "the oldest kept sample is overwritten first"
        );
    }

    #[test]
    fn sketch_capacities_follow_the_observed_traffic_share() {
        let policy = RecharacterizePolicy {
            sample_period: 1,
            sample_capacity: 16,
            classes: 2,
            ..RecharacterizePolicy::default()
        };
        let state = state_with(policy);
        install_dummy_curve(&state);
        let frame = GrayImage::filled(4, 4, 60);

        // 90% of traffic lands in class 0.
        for _ in 0..90 {
            state.record_serve(0, &Histogram::of(&frame), false);
        }
        for _ in 0..10 {
            state.record_serve(1, &Histogram::of(&frame), false);
        }
        state.rebalance_sketch_capacities();

        let hot = state.sketch_capacity(0);
        let rare = state.sketch_capacity(1);
        assert_eq!(
            hot + rare,
            2 * 16,
            "rebalancing preserves the pooled budget"
        );
        assert!(hot > rare, "the hot class gets the deeper sketch");
        assert!(rare >= 4, "the rare class keeps the rebuild floor");
        // 90/10 split over a spread of 32 - 8 = 24: shares 21 and 2, the
        // rounding leftover (1) goes to the hot class.
        assert_eq!(hot, 26);
        assert_eq!(rare, 6);
    }

    #[test]
    fn rebalancing_is_a_noop_for_single_class_or_idle_states() {
        let single = state_with(RecharacterizePolicy {
            sample_capacity: 8,
            ..RecharacterizePolicy::default()
        });
        single.record_serve(0, &histogram_of_level(10), false);
        single.rebalance_sketch_capacities();
        assert_eq!(single.sketch_capacity(0), 8, "single class is untouched");

        let idle = state_with(RecharacterizePolicy {
            sample_capacity: 8,
            classes: 3,
            ..RecharacterizePolicy::default()
        });
        idle.rebalance_sketch_capacities();
        for class in 0..3 {
            assert_eq!(
                idle.sketch_capacity(class),
                8,
                "no traffic observed: capacities stay uniform"
            );
        }
    }

    #[test]
    fn defaults_are_sane() {
        let policy = RecharacterizePolicy::default();
        assert!(policy.sample_period > 0);
        assert!(policy.sample_capacity > 0);
        assert!(policy.classes >= 1);
        assert_eq!(policy.fit, CurveFit::WorstCase);
        assert!(!policy.ranges.is_empty());
        assert!(policy.ranges.iter().all(|r| (2..=256).contains(r)));
        assert!(matches!(ServingMode::default(), ServingMode::ClosedLoop));
    }

    #[test]
    fn serving_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServingMode>();
        assert_send_sync::<RecharacterizePolicy>();
        assert_send_sync::<OpenLoopState>();
        assert_send_sync::<CurveBank>();
    }
}
