//! Error type for the serving runtime.

use std::fmt;

use hebs_core::HebsError;

use crate::snapshot::SnapshotError;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Error raised by the frame-serving engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// An engine configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A per-request distortion budget (see
    /// `Engine::process_frame_with_budget`) was outside `[0, 1]`.
    InvalidBudget {
        /// The rejected budget.
        budget: f64,
    },
    /// An error from the HEBS pipeline while serving a frame.
    Core(HebsError),
    /// A stream worker was lost (panicked) before delivering this frame's
    /// result; later frames are unaffected.
    FrameLost {
        /// Input position of the frame whose result never arrived.
        index: usize,
    },
    /// The producer iterator passed to `Engine::stream` panicked, so the
    /// stream ends early; every frame it did yield was served.
    ProducerFailed {
        /// Number of frames the producer yielded before failing.
        frames_produced: usize,
    },
    /// Every stream worker died before the producer finished, so the
    /// stream ends early; the frames already yielded were served normally.
    PoolFailed {
        /// Number of frames served before the pool was lost.
        frames_served: usize,
    },
    /// An arrival was refused by a tenant's admission control (see
    /// [`ShedPolicy`](crate::ShedPolicy)): the tenant's queue was at its
    /// bound (or over its fair share under overload), so the frame was
    /// shed instead of queued. Retry later or drop the frame.
    Shed {
        /// Numeric id of the tenant whose arrival was shed.
        tenant: u16,
        /// The tenant's admitted-but-unfinished frame count at shed time.
        queue_depth: usize,
    },
    /// A tenant id that was never registered with the
    /// [`TenantRegistry`](crate::TenantRegistry).
    UnknownTenant {
        /// The unknown numeric tenant id.
        tenant: u16,
    },
    /// A characteristic snapshot could not be saved or restored (see
    /// [`SnapshotError`]). On restore the engine keeps serving cold — a
    /// rejected snapshot never corrupts installed state.
    Snapshot(SnapshotError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidConfig { name, reason } => {
                write!(f, "invalid engine configuration: {name}: {reason}")
            }
            RuntimeError::InvalidBudget { budget } => {
                write!(f, "distortion budget {budget} is outside [0, 1]")
            }
            RuntimeError::Core(err) => write!(f, "pipeline error: {err}"),
            RuntimeError::FrameLost { index } => {
                write!(f, "a worker was lost before serving frame {index}")
            }
            RuntimeError::ProducerFailed { frames_produced } => write!(
                f,
                "the frame producer failed after yielding {frames_produced} frames"
            ),
            RuntimeError::PoolFailed { frames_served } => write!(
                f,
                "the worker pool was lost after serving {frames_served} frames"
            ),
            RuntimeError::Shed {
                tenant,
                queue_depth,
            } => write!(
                f,
                "tenant {tenant} shed an arrival at queue depth {queue_depth}"
            ),
            RuntimeError::UnknownTenant { tenant } => {
                write!(f, "tenant {tenant} is not registered")
            }
            RuntimeError::Snapshot(err) => write!(f, "snapshot error: {err}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Core(err) => Some(err),
            RuntimeError::Snapshot(err) => Some(err),
            _ => None,
        }
    }
}

impl From<HebsError> for RuntimeError {
    fn from(err: HebsError) -> Self {
        RuntimeError::Core(err)
    }
}

impl From<SnapshotError> for RuntimeError {
    fn from(err: SnapshotError) -> Self {
        RuntimeError::Snapshot(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_and_source() {
        use std::error::Error;
        let err = RuntimeError::InvalidConfig {
            name: "queue_depth",
            reason: "must be nonzero".to_string(),
        };
        assert!(err.to_string().contains("queue_depth"));
        assert!(err.source().is_none());

        let err: RuntimeError = HebsError::InvalidDynamicRange { range: 300 }.into();
        assert!(err.to_string().contains("300"));
        assert!(err.source().is_some());

        let err = RuntimeError::InvalidBudget { budget: 1.5 };
        assert!(err.to_string().contains("1.5"));
        assert!(err.source().is_none());

        let err = RuntimeError::Shed {
            tenant: 3,
            queue_depth: 8,
        };
        assert!(err.to_string().contains("tenant 3"));
        assert!(err.to_string().contains("depth 8"));

        let err = RuntimeError::UnknownTenant { tenant: 9 };
        assert!(err.to_string().contains("tenant 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
