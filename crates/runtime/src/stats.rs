//! Throughput, latency and cache statistics for the serving engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cumulative counters shared by all workers of an engine.
#[derive(Debug, Default)]
pub(crate) struct StatsCollector {
    frames: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    busy_nanos: AtomicU64,
}

impl StatsCollector {
    pub(crate) fn record_frame(&self, latency: Duration, cache_hit: Option<bool>) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        match cache_hit {
            Some(true) => self.cache_hits.fetch_add(1, Ordering::Relaxed),
            Some(false) => self.cache_misses.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
    }

    pub(crate) fn snapshot(&self) -> EngineStats {
        EngineStats {
            frames: self.frames.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time snapshot of an engine's cumulative serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total frames served since the engine was created.
    pub frames: u64,
    /// Cache lookups that reused a fitted transform or outcome.
    pub cache_hits: u64,
    /// Cache lookups that had to run the full fit.
    pub cache_misses: u64,
    /// Total worker time spent serving frames (sums across workers, so it
    /// can exceed wall-clock time on a pool).
    pub busy: Duration,
}

impl EngineStats {
    /// Fraction of cache lookups that hit, or 0 when the cache was never
    /// consulted (for example when it is disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Mean per-frame serving latency.
    pub fn mean_latency(&self) -> Duration {
        if self.frames == 0 {
            Duration::ZERO
        } else {
            // Divide in u128 nanoseconds: the frame counter is cumulative
            // and can exceed u32 on a long-lived engine.
            let nanos = self.busy.as_nanos() / u128::from(self.frames);
            Duration::from_nanos(nanos as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_accumulates_and_snapshots() {
        let collector = StatsCollector::default();
        collector.record_frame(Duration::from_millis(2), Some(true));
        collector.record_frame(Duration::from_millis(4), Some(false));
        collector.record_frame(Duration::from_millis(6), None);
        let stats = collector.snapshot();
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.busy, Duration::from_millis(12));
        assert_eq!(stats.mean_latency(), Duration::from_millis(4));
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_safe_defaults() {
        let stats = EngineStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
        assert_eq!(stats.mean_latency(), Duration::ZERO);
    }
}
