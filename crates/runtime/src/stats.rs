//! Throughput, latency and cache statistics for the serving engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How one frame was served relative to the transformation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ServeKind {
    /// The cache is disabled; nothing to count.
    Uncached,
    /// Served from a cached fit found by the first probe.
    Hit,
    /// The first probe missed, but another worker's concurrent fit for the
    /// same key served this frame after a single-flight wait.
    CoalescedHit,
    /// Served by running the full fit (including fits that failed).
    Miss,
}

impl ServeKind {
    /// Whether the frame was served from the cache.
    pub(crate) fn is_hit(self) -> bool {
        matches!(self, ServeKind::Hit | ServeKind::CoalescedHit)
    }
}

/// Cumulative counters shared by all workers of an engine.
///
/// All increments and snapshot loads are `Relaxed`: each counter is an
/// independent monotonic tally, nothing is published through them, and a
/// snapshot is advisory — it never gates a control decision.
#[derive(Debug, Default)]
pub(crate) struct StatsCollector {
    frames: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_coalesced: AtomicU64,
    cache_rejected: AtomicU64,
    fit_evaluations: AtomicU64,
    open_loop_fallbacks: AtomicU64,
    recharacterizations: AtomicU64,
    deadline_degraded: AtomicU64,
    sheds: AtomicU64,
    poison_recoveries: AtomicU64,
    snapshot_rejected: AtomicU64,
    busy_nanos: AtomicU64,
}

impl StatsCollector {
    pub(crate) fn record_frame(
        &self,
        latency: Duration,
        kind: ServeKind,
        rejections: u64,
        fit_evaluations: u64,
        open_loop_fallback: bool,
        deadline_degraded: bool,
    ) {
        self.frames.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
        self.busy_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed); // ordering: monotonic tally, nothing published
        if fit_evaluations > 0 {
            self.fit_evaluations
                .fetch_add(fit_evaluations, Ordering::Relaxed); // ordering: monotonic tally, nothing published
        }
        if open_loop_fallback {
            self.open_loop_fallbacks.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
        }
        if deadline_degraded {
            self.deadline_degraded.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
        }
        match kind {
            ServeKind::Uncached => {}
            ServeKind::Hit => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
            }
            ServeKind::CoalescedHit => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
                self.cache_coalesced.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
            }
            ServeKind::Miss => {
                self.cache_misses.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
            }
        }
        if rejections > 0 {
            self.cache_rejected.fetch_add(rejections, Ordering::Relaxed); // ordering: monotonic tally, nothing published
        }
    }

    /// Records one background re-characterization (an open-loop curve
    /// rebuild that was swapped in).
    pub(crate) fn record_recharacterization(&self) {
        self.recharacterizations.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
    }

    /// Records one shed arrival: a frame the admission control refused
    /// before it reached the serve path (it is *not* counted in `frames`).
    pub(crate) fn record_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
    }

    /// Records one poisoned-lock recovery: a guard whose previous holder
    /// panicked was recovered through `lock_healthy` instead of cascading
    /// the panic through the worker pool.
    pub(crate) fn record_poison_recovery(&self) {
        self.poison_recoveries.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
    }

    /// Records one rejected snapshot restore: a corrupt or
    /// schema-mismatched snapshot was refused with a typed error and the
    /// engine stayed cold instead of installing partial state.
    pub(crate) fn record_snapshot_rejection(&self) {
        self.snapshot_rejected.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, nothing published
    }

    /// Snapshots the cumulative counters. `cache_bytes` and `queue_depth`
    /// are point-in-time quantities owned by the cache and the admission
    /// controller, so the engine (or registry) fills them in afterwards —
    /// as it does the poison recoveries counted inside the cache and the
    /// open-loop state.
    pub(crate) fn snapshot(&self) -> EngineStats {
        EngineStats {
            frames: self.frames.load(Ordering::Relaxed), // ordering: advisory snapshot
            cache_hits: self.cache_hits.load(Ordering::Relaxed), // ordering: advisory snapshot
            cache_misses: self.cache_misses.load(Ordering::Relaxed), // ordering: advisory snapshot
            cache_coalesced: self.cache_coalesced.load(Ordering::Relaxed), // ordering: advisory snapshot
            cache_rejected: self.cache_rejected.load(Ordering::Relaxed), // ordering: advisory snapshot
            cache_bytes: 0,
            fit_evaluations: self.fit_evaluations.load(Ordering::Relaxed), // ordering: advisory snapshot
            open_loop_fallbacks: self.open_loop_fallbacks.load(Ordering::Relaxed), // ordering: advisory snapshot
            recharacterizations: self.recharacterizations.load(Ordering::Relaxed), // ordering: advisory snapshot
            deadline_degraded: self.deadline_degraded.load(Ordering::Relaxed), // ordering: advisory snapshot
            sheds: self.sheds.load(Ordering::Relaxed), // ordering: advisory snapshot
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed), // ordering: advisory snapshot
            snapshot_rejected: self.snapshot_rejected.load(Ordering::Relaxed), // ordering: advisory snapshot
            queue_depth: 0,
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)), // ordering: advisory snapshot
        }
    }
}

/// A point-in-time snapshot of an engine's cumulative serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total frames served since the engine was created.
    pub frames: u64,
    /// Frames served from a cached fit (includes coalesced hits, excludes
    /// rejected ones).
    pub cache_hits: u64,
    /// Frames that ran the full fit (includes frames whose cached candidate
    /// was rejected by verification).
    pub cache_misses: u64,
    /// Subset of `cache_hits` that initially missed but were served by
    /// another worker's concurrent fit for the same key (single-flight
    /// coalescing) instead of running a redundant fit.
    pub cache_coalesced: u64,
    /// Cached entries rejected by verification — a stored-frame mismatch or
    /// a measured distortion over the requesting budget. Each rejection
    /// evicted the entry and triggered a refit (or a coalesced wait).
    pub cache_rejected: u64,
    /// Bytes resident in the transformation cache when the snapshot was
    /// taken (0 when the cache is disabled).
    pub cache_bytes: u64,
    /// Target-range fit evaluations across all served frames: each range
    /// fitted during a search counts once (the blend candidates it
    /// arbitrates internally are part of that one evaluation); cache
    /// replays count zero. A closed-loop miss bisects through ~8 of these,
    /// an open-loop miss performs exactly 1 (plus a closed-loop search when
    /// the drift check falls back) — this counter is what the throughput
    /// bench gates on across PRs to keep both honest.
    pub fit_evaluations: u64,
    /// Frames whose open-loop fit exceeded the distortion budget and were
    /// re-served through the closed-loop search (the per-serve drift
    /// check). Always 0 in closed-loop mode.
    pub open_loop_fallbacks: u64,
    /// Background re-characterizations performed: distortion characteristic
    /// curves rebuilt from the rolling traffic sketch *and swapped into the
    /// serving slot* (a rebuild whose predictions match the installed curve
    /// is discarded rather than swapped — see
    /// `RecharacterizePolicy::min_swap_delta` — and does not count).
    /// Always 0 in closed-loop mode.
    pub recharacterizations: u64,
    /// Frames served past their [`ServeOptions`](crate::ServeOptions)
    /// deadline: the open-loop drift recheck was skipped and the installed
    /// per-class curve served directly, trading the per-frame distortion
    /// contract for bounded latency. Always 0 when no deadline is passed
    /// (or the engine has no installed curve to degrade to).
    pub deadline_degraded: u64,
    /// Arrivals refused by admission control before reaching the serve
    /// path (see [`ShedPolicy`](crate::ShedPolicy)); shed frames are not
    /// counted in `frames`. Always 0 outside multi-tenant serving.
    pub sheds: u64,
    /// Poisoned-lock recoveries: acquisitions that found their lock
    /// poisoned by a previously panicked holder and recovered the guard
    /// (every critical section leaves its structure consistent) instead
    /// of cascading the panic through the worker pool. Always 0 unless a
    /// worker panicked mid-serve.
    pub poison_recoveries: u64,
    /// Characteristic snapshots refused on restore: corrupt, truncated or
    /// schema-mismatched snapshot files that were rejected with a typed
    /// [`SnapshotError`](crate::SnapshotError) while the engine kept
    /// serving cold. Always 0 unless
    /// [`Engine::restore_from_reader`](crate::Engine::restore_from_reader)
    /// was handed a bad snapshot.
    pub snapshot_rejected: u64,
    /// Admitted frames currently queued or in service when the snapshot
    /// was taken (0 outside multi-tenant serving, where nothing bounds
    /// admission).
    pub queue_depth: u64,
    /// Total worker time spent serving frames (sums across workers, so it
    /// can exceed wall-clock time on a pool).
    pub busy: Duration,
}

impl EngineStats {
    /// Fraction of cache lookups that hit, or 0 when the cache was never
    /// consulted (for example when it is disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Mean per-frame serving latency.
    pub fn mean_latency(&self) -> Duration {
        if self.frames == 0 {
            Duration::ZERO
        } else {
            // Divide in u128 nanoseconds: the frame counter is cumulative
            // and can exceed u32 on a long-lived engine.
            let nanos = self.busy.as_nanos() / u128::from(self.frames);
            Duration::from_nanos(nanos as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_accumulates_and_snapshots() {
        let collector = StatsCollector::default();
        collector.record_frame(Duration::from_millis(2), ServeKind::Hit, 0, 0, false, false);
        collector.record_frame(
            Duration::from_millis(4),
            ServeKind::Miss,
            0,
            11,
            false,
            false,
        );
        collector.record_frame(
            Duration::from_millis(6),
            ServeKind::Uncached,
            0,
            24,
            false,
            false,
        );
        let stats = collector.snapshot();
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.busy, Duration::from_millis(12));
        assert_eq!(stats.mean_latency(), Duration::from_millis(4));
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.fit_evaluations, 35, "fit evaluations accumulate");
    }

    #[test]
    fn coalesced_and_rejected_counters_accumulate() {
        let collector = StatsCollector::default();
        collector.record_frame(
            Duration::from_millis(1),
            ServeKind::CoalescedHit,
            0,
            0,
            false,
            false,
        );
        collector.record_frame(
            Duration::from_millis(1),
            ServeKind::Miss,
            1,
            3,
            false,
            false,
        );
        collector.record_frame(
            Duration::from_millis(1),
            ServeKind::CoalescedHit,
            1,
            0,
            false,
            false,
        );
        let stats = collector.snapshot();
        assert_eq!(stats.cache_hits, 2, "coalesced hits count as hits");
        assert_eq!(stats.cache_coalesced, 2);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_rejected, 2);
    }

    #[test]
    fn open_loop_counters_accumulate() {
        let collector = StatsCollector::default();
        collector.record_frame(
            Duration::from_millis(1),
            ServeKind::Miss,
            0,
            1,
            false,
            false,
        );
        collector.record_frame(Duration::from_millis(1), ServeKind::Miss, 0, 9, true, false);
        collector.record_recharacterization();
        let stats = collector.snapshot();
        assert_eq!(stats.open_loop_fallbacks, 1);
        assert_eq!(stats.recharacterizations, 1);
        assert_eq!(stats.fit_evaluations, 10);
    }

    #[test]
    fn deadline_and_shed_counters_accumulate() {
        let collector = StatsCollector::default();
        collector.record_frame(Duration::from_millis(1), ServeKind::Miss, 0, 1, false, true);
        collector.record_frame(Duration::from_millis(1), ServeKind::Hit, 0, 0, false, false);
        collector.record_shed();
        collector.record_shed();
        let stats = collector.snapshot();
        assert_eq!(stats.deadline_degraded, 1);
        assert_eq!(stats.sheds, 2);
        assert_eq!(stats.frames, 2, "shed arrivals are not served frames");
        assert_eq!(stats.queue_depth, 0, "point-in-time field defaults to 0");
    }

    #[test]
    fn poison_recoveries_accumulate() {
        let collector = StatsCollector::default();
        collector.record_poison_recovery();
        collector.record_poison_recovery();
        let stats = collector.snapshot();
        assert_eq!(stats.poison_recoveries, 2);
        assert_eq!(stats.frames, 0, "recoveries are not served frames");
    }

    #[test]
    fn empty_stats_have_safe_defaults() {
        let stats = EngineStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
        assert_eq!(stats.mean_latency(), Duration::ZERO);
        assert_eq!(stats.cache_bytes, 0);
        assert_eq!(stats.fit_evaluations, 0);
        assert_eq!(stats.deadline_degraded, 0);
        assert_eq!(stats.sheds, 0);
        assert_eq!(stats.poison_recoveries, 0);
        assert_eq!(stats.snapshot_rejected, 0);
        assert_eq!(stats.queue_depth, 0);
    }
}
