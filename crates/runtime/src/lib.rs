//! A concurrent, cache-accelerated frame-serving engine for HEBS.
//!
//! The core crate answers "what should the display do for *this* image?";
//! this crate answers it for *traffic*: streams and batches of frames served
//! at maximum hardware throughput. It is built from three pieces, all
//! dependency-free `std` Rust:
//!
//! * **A worker pool** — [`Engine::process_batch`] fans frames out across
//!   threads with an atomic work-stealing cursor, and [`Engine::stream`]
//!   pulls from a producer iterator through bounded queues so a saturated
//!   pool exerts backpressure instead of buffering unboundedly. Results are
//!   always yielded in input order.
//! * **A transformation cache** — a byte-budgeted sharded LRU
//!   ([`ShardedLru`]) keyed either by a 128-bit content hash of the frame
//!   ([`CacheMode::Exact`]; the stored frame is verified on every hit, so
//!   replay is bit-identical and the lookup never copies the pixel buffer)
//!   or by a quantized histogram signature ([`CacheMode::Approximate`]):
//!   near-identical consecutive video frames reuse the fitted
//!   transformation (the expensive GHE + dynamic-program stage) and only
//!   re-run the cheap per-frame application. Concurrent misses on the same
//!   key are *single-flight*: one worker fits while the others wait and
//!   share the result — and the in-flight table is sharded like the
//!   store, so misses on unrelated keys never contend on a common lock.
//!   Distortion budgets are quantized into bands, so a fit whose measured
//!   distortion satisfies a stricter budget is shared across budgets, and
//!   with a histogram-capable measure the budget recheck on a cached fit
//!   costs O(levels) — a rejected candidate never touches a pixel. This
//!   exploits the same observation as hardware HE implementations: the
//!   transform changes slowly relative to the frame rate, so the
//!   programmed LUT can be reused across frames.
//! * **Serving statistics** — per-frame latency, throughput, cache
//!   hit-rate, rejected-hit, coalesced-miss, resident-byte and
//!   fit-evaluation reporting via [`BatchReport`] and [`EngineStats`].
//!   Each worker owns a reusable [`hebs_core::FitScratch`] frame buffer,
//!   so steady-state serving performs no intermediate per-frame
//!   allocations.
//!
//! # Example
//!
//! ```
//! use hebs_core::{HebsPolicy, PipelineConfig};
//! use hebs_imaging::{FrameSequence, SceneKind};
//! use hebs_runtime::{CacheConfig, Engine, EngineConfig};
//!
//! let policy = HebsPolicy::closed_loop(PipelineConfig::default());
//! let config = EngineConfig {
//!     workers: 2,
//!     cache: Some(CacheConfig::approximate()),
//!     ..EngineConfig::default()
//! };
//! let engine = Engine::new(policy, config)?;
//!
//! // Stream a noisy static scene: after the first frame, the fitted
//! // transform is reused for every near-identical successor.
//! let frames = FrameSequence::new(SceneKind::Static, 32, 32, 12, 3);
//! for result in engine.stream(frames.frames().collect::<Vec<_>>()) {
//!     let result = result?;
//!     assert!(result.outcome.power_saving >= 0.0);
//! }
//! assert!(engine.stats().cache_hit_rate() > 0.0);
//! # Ok::<(), hebs_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod error;
mod serving;
mod snapshot;
mod stats;
mod tenant;

pub use cache::{
    CacheConfig, CacheCounters, CacheMode, ShardedLru, DEFAULT_BUDGET_BAND_WIDTH,
    DEFAULT_BYTE_BUDGET,
};
pub use engine::{
    BatchReport, Engine, EngineConfig, FrameResult, FrameStream, ScopedFrameStream, ServeOptions,
    StreamPoll,
};
pub use error::{Result, RuntimeError};
pub use serving::{RecharacterizePolicy, ServingMode};
pub use snapshot::{
    RestoreReport, SnapshotError, REGISTRY_MAGIC, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC,
    SNAPSHOT_SCHEMA_VERSION,
};
pub use stats::EngineStats;
pub use tenant::{AdmissionPermit, ShedPolicy, TenantId, TenantRegistry, TenantSpec};

/// The concurrency-correctness toolkit the runtime is built on: lock-order
/// verified mutexes, poison recovery and the seeded interleaving points
/// (re-exported so harnesses can seed schedules via
/// `hebs_runtime::analysis::interleave`).
pub use hebs_analysis as analysis;
