//! End-to-end checks for the semantic passes against *real* workspace
//! sources: a seeded lock-order inversion must name both acquisition
//! sites, a seeded allocation in the engine's serve path must fail the
//! lint, and the binary's `--json` report must round-trip the findings.

use hebs_analysis::lint::{self, FileKind, Finding};
use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analysis sits two levels under the workspace root")
        .to_path_buf()
}

fn engine_source() -> String {
    std::fs::read_to_string(repo_root().join("crates/runtime/src/engine.rs"))
        .expect("crates/runtime/src/engine.rs is readable")
}

/// The seeded inversion the concurrency docs use as the canonical
/// example: a CacheShard lock taken under a live FlightTable guard. The
/// report must carry *both* acquisition sites, like the lockdep panic.
#[test]
fn lock_order_pass_names_both_sites_of_a_seeded_inversion() {
    let source = "\
pub struct Shards {
    flights: OrderedMutex<FlightSet>,
    shards: [OrderedMutex<Shard>; 8],
}

pub fn build() -> Shards {
    Shards {
        flights: OrderedMutex::new(LockClass::FlightTable, FlightSet::default()),
        shards: core::array::from_fn(|_| OrderedMutex::new(LockClass::CacheShard, Shard::default())),
    }
}

pub fn promote(table: &Shards, slot: usize) {
    let flight = table.flights.lock();
    let shard = table.shards[slot].lock();
    shard.insert(flight.key());
}
";
    let findings = lint::scan_source("crates/runtime/src/seeded.rs", FileKind::Library, source);
    let inversions: Vec<&Finding> = findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(
        inversions.len(),
        1,
        "expected exactly one inversion, got: {findings:?}"
    );
    let report = &inversions[0];
    assert_eq!(report.line, 15, "reported at the lower-ranked acquisition");
    assert!(
        report
            .message
            .contains("`CacheShard` (rank 40) acquired at line 15"),
        "names the offending site: {}",
        report.message
    );
    assert!(
        report
            .message
            .contains("`FlightTable` (rank 50) acquired at line 14"),
        "names the held guard's site: {}",
        report.message
    );
}

/// Seeding a heap allocation into the real engine's `fn serve` (a
/// `// lint: hot-path` root) must fail the lint; the unmodified source
/// must not carry that finding. This pins the pass to the actual serve
/// path, not just fixtures.
#[test]
fn seeded_allocation_in_the_real_serve_fn_fails_the_lint() {
    let pristine = engine_source();
    let marker = "fn serve(";
    let open = pristine
        .find(marker)
        .and_then(|at| pristine[at..].find(" {\n").map(|off| at + off + 3))
        .expect("engine.rs declares fn serve with a body");
    let mut seeded = pristine.clone();
    seeded.insert_str(open, "        let leak: Vec<u8> = Vec::new();\n");

    let path = "crates/runtime/src/engine.rs";
    let before = lint::scan_source(path, FileKind::Library, &pristine);
    assert!(
        !before.iter().any(|f| f.rule == "hot-path-alloc"),
        "pristine engine.rs must be allocation-clean on the serve path: {before:?}"
    );
    let after = lint::scan_source(path, FileKind::Library, &seeded);
    let alloc: Vec<&Finding> = after
        .iter()
        .filter(|f| f.rule == "hot-path-alloc")
        .collect();
    assert!(
        alloc.iter().any(
            |f| f.message.contains("`Vec::new`") && f.message.contains("serve-path fn `serve`")
        ),
        "the seeded Vec::new must be flagged inside fn serve: {after:?}"
    );
}

/// The `--json` report the CI analysis job uploads: findings round-trip
/// through the binary with rule, path, line and message fields.
#[test]
fn lint_binary_writes_the_json_findings_artifact() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures/bad/lock_order_inversion.rs");
    let json_path =
        std::env::temp_dir().join(format!("hebs_lint_findings_{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_lint"))
        .arg("--fixture")
        .arg(&fixture)
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("failed to run the lint binary");
    assert!(!output.status.success(), "the bad fixture must fail");
    let json = std::fs::read_to_string(&json_path).expect("json artifact written");
    let _ = std::fs::remove_file(&json_path);
    assert!(json.contains("\"files_scanned\": 1"), "{json}");
    assert!(json.contains("\"rule\": \"lock-order\""), "{json}");
    assert!(json.contains("lock-order inversion in `promote`"), "{json}");
}
