//! Self-test for the lint binary: every fixture under
//! `tests/lint_fixtures/bad/` must make the binary exit nonzero, every
//! fixture under `tests/lint_fixtures/good/` must pass it clean.

use std::path::PathBuf;
use std::process::Command;

fn fixtures(kind: &str) -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(kind);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing fixture dir {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures in {}", dir.display());
    files
}

fn run_lint(fixture: &PathBuf) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lint"))
        .arg("--fixture")
        .arg(fixture)
        .output()
        .expect("failed to run the lint binary")
}

#[test]
fn every_bad_fixture_fails_the_lint() {
    for fixture in fixtures("bad") {
        let output = run_lint(&fixture);
        assert!(
            !output.status.success(),
            "{} should have been flagged; stdout: {}",
            fixture.display(),
            String::from_utf8_lossy(&output.stdout)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("finding"),
            "{}: expected a findings report, got: {stdout}",
            fixture.display()
        );
    }
}

#[test]
fn every_good_fixture_passes_the_lint() {
    for fixture in fixtures("good") {
        let output = run_lint(&fixture);
        assert!(
            output.status.success(),
            "{} should have passed; stdout: {}",
            fixture.display(),
            String::from_utf8_lossy(&output.stdout)
        );
    }
}

/// The migrated tree itself stays clean — the same invocation CI runs.
#[test]
fn workspace_scan_is_clean() {
    let output = Command::new(env!("CARGO_BIN_EXE_lint"))
        .output()
        .expect("failed to run the lint binary");
    assert!(
        output.status.success(),
        "workspace lint failed:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
}
