// A serve-path root must not allocate: the fused ingest hands every
// stage its buffers and steady-state fits reuse worker scratch. The
// allocation here hides one call below the annotated root — the pass
// follows the same-crate call closure, not just the root body.

// lint: hot-path
pub fn serve(frame: &Frame, scratch: &mut Scratch) -> Outcome {
    let key = derive_key(frame);
    fit_with(key, scratch)
}

fn derive_key(frame: &Frame) -> Key {
    Key::from(frame.bytes.to_vec())
}

fn fit_with(key: Key, scratch: &mut Scratch) -> Outcome {
    scratch.apply(key)
}
