// A raw condvar bypasses the ordered wait/reacquire bookkeeping.
pub struct FlightShard {
    done: std::sync::Condvar,
}
