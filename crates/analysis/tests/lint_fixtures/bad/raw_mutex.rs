// A raw mutex carries no rank: lockdep cannot order it.
use std::sync::Mutex;

pub struct Table {
    slots: Mutex<Vec<u64>>,
}
