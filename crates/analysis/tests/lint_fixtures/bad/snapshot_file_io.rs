// Opening files inside the runtime ties snapshot persistence to one
// filesystem layout and hides I/O failures from the caller's typed-error
// path.
pub fn save_bank(path: &Path, bytes: &[u8]) -> bool {
    let Ok(mut file) = File::create(path) else {
        return false;
    };
    std::fs::write(path, bytes).is_ok() && file.flush().is_ok()
}
