use std::sync::atomic::{AtomicU64, Ordering};

// A relaxed read gating a control decision, with no stated reasoning.
pub fn should_shed(depth: &AtomicU64, limit: u64) -> bool {
    depth.load(Ordering::Relaxed) >= limit
}
