// lint-scope: crate-root
// A crate root without the unsafe seal.
#![allow(dead_code)]

pub mod engine;
