// A direct per-pixel histogram pass in serve-path code: the serve already
// traversed the frame once in the fused FrameIngest pass, so this reads
// every pixel a second time.
pub fn serve_key(frame: &Frame) -> (Histogram, Signature) {
    let histogram = Histogram::of(frame);
    let signature = HistogramSignature::of(frame);
    (histogram, signature)
}
