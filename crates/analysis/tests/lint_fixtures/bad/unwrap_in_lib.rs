// A poisoned-lock unwrap in library code: one panicked worker cascades
// through every thread that touches the lock afterwards.
pub fn drain(queue: &std::collections::VecDeque<u32>) -> u32 {
    queue.front().copied().unwrap()
}
