// Descending-rank acquisition: a CacheShard lock (rank 40) taken while
// a FlightTable guard (rank 50) is still live. The lockdep runtime
// panics on this only when a test executes the interleaving; the static
// pass reports it at lint time, naming both acquisition sites.

pub struct Shards {
    flights: OrderedMutex<FlightSet>,
    shards: [OrderedMutex<Shard>; 8],
}

pub fn build() -> Shards {
    Shards {
        flights: OrderedMutex::new(LockClass::FlightTable, FlightSet::default()),
        shards: core::array::from_fn(|_| OrderedMutex::new(LockClass::CacheShard, Shard::default())),
    }
}

pub fn promote(table: &Shards, slot: usize) {
    let flight = table.flights.lock();
    let shard = table.shards[slot].lock();
    shard.insert(flight.key());
}
