// Yield-coverage drift, both directions: `shard.evict` is a real seam
// with no replay coverage, and `shard.stale` is a manifest entry whose
// point no longer exists — a scenario that silently stopped exercising
// anything.

const COVERED_POINTS: [&str; 2] = ["shard.insert", "shard.stale"];

pub fn insert(shard: &Shard, key: Key) {
    interleave::point("shard.insert");
    shard.put(key);
    interleave::point("shard.evict");
}
