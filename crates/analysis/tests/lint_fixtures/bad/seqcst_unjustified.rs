use std::sync::atomic::{AtomicU64, Ordering};

// SeqCst as a talisman: if the global order matters, say why.
pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::SeqCst)
}
