// A sketch guard held across characterization work: the rebuild fit can
// take milliseconds, and every serve sampling into the sketch convoys
// behind it. The guard must be dropped (or the sketch drained into a
// local) before the heavy call.

pub struct Bank {
    slots: OrderedMutex<Slots>,
}

pub fn build() -> Bank {
    Bank {
        slots: OrderedMutex::new(LockClass::Sketch, Slots::default()),
    }
}

pub fn rebuild(bank: &Bank) -> Curve {
    let guard = bank.slots.lock();
    let sketch = guard.sketch();
    characterize_from(sketch)
}
