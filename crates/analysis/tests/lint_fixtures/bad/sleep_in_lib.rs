// Sleeping on the serve path hides backpressure instead of surfacing it.
pub fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}
