// `.expect` is the same cascade with a nicer epitaph.
pub fn head(values: &[u32]) -> u32 {
    *values.first().expect("values must not be empty")
}
