// A stats counter nothing increments and the snapshot forgot: the
// dashboard reads zero forever. `hits` is fully reconciled; `misses`
// trips all three sub-checks (no write site, no load site, absent from
// the snapshot body).

pub struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardStats {
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, read only by snapshots
    }

    pub fn snapshot(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Acquire), 0)
    }
}
