// lint-scope: crate-root
//! A crate root carrying the unsafe seal.
#![forbid(unsafe_code)]

pub fn noop() {}
