// Snapshot plumbing written against caller-supplied streams: the caller
// owns the file (tempfile-and-rename, fsync policy) and every failure
// comes back as a typed error.
pub fn save_bank<W: Write>(writer: &mut W, bytes: &[u8]) -> Result<(), SnapshotError> {
    writer.write_all(bytes).map_err(SnapshotError::Io)
}

pub fn load_bank<R: Read>(reader: &mut R) -> Result<Vec<u8>, SnapshotError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes).map_err(SnapshotError::Io)?;
    Ok(bytes)
}
