// Rank-ordered locking passes: ascending acquisition, and a descending
// *sequence* is fine when the higher-ranked guard is dropped first —
// liveness, not source order, is what the pass tracks.

pub struct Shards {
    flights: OrderedMutex<FlightSet>,
    shards: [OrderedMutex<Shard>; 8],
}

pub fn build() -> Shards {
    Shards {
        flights: OrderedMutex::new(LockClass::FlightTable, FlightSet::default()),
        shards: core::array::from_fn(|_| OrderedMutex::new(LockClass::CacheShard, Shard::default())),
    }
}

pub fn promote(table: &Shards, slot: usize) {
    let shard = table.shards[slot].lock();
    let flight = table.flights.lock();
    flight.note(shard.len());
}

pub fn requeue(table: &Shards, slot: usize) {
    let flight = table.flights.lock();
    let key = flight.key();
    drop(flight);
    let shard = table.shards[slot].lock();
    shard.insert(key);
}
