// The serve path traverses the frame once: histogram, signature and the
// exact-cache content hash all come out of the single fused ingest pass.
// The one sanctioned direct pass — a build-time capability probe on a
// constant 4x4 frame — carries the inline waiver.
pub fn serve_ingest(frame: &Frame, seed: u64) -> (Histogram, Signature, u128) {
    FrameIngest::compute_auto(frame, seed).into_parts()
}

pub fn capability_probe() -> Histogram {
    Histogram::of(&Frame::filled(4, 4, 128)) // lint: allow(frame-ingest) build-time probe, not a served frame
}
