// An inline waiver names the rule and leaves the justification on the
// offending line itself.
pub fn first_checked(values: &[u32]) -> u32 {
    *values.first().unwrap() // lint: allow(no-unwrap) caller guarantees non-empty via admission check
}
