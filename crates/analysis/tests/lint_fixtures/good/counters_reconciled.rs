// Fully reconciled counters: every atomic field has a write site, a
// load site, and appears in the snapshot body, so nothing can rot
// silently. The `// lint: counter-struct` annotation opts a struct in
// when its name carries no Stats/Counters/Collector marker.

// lint: counter-struct
pub struct ShardTallies {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardTallies {
    pub fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, read only by snapshots
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed); // ordering: monotonic tally, read only by snapshots
        }
    }

    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Acquire),
            self.misses.load(Ordering::Acquire),
        )
    }
}
