// The allocation-free serve path: scratch reuse on the steady state, a
// `// lint: cold-path` boundary fencing off the rebuild (which may
// allocate freely — the closure stops there), and a justified waiver
// where a refcount bump is the contract.

// lint: hot-path
pub fn serve(frame: &Frame, scratch: &mut Scratch) -> Outcome {
    let key = derive_key(frame, scratch);
    maybe_rebuild(scratch);
    fit_with(key, scratch)
}

fn derive_key(frame: &Frame, scratch: &mut Scratch) -> Key {
    scratch.ingest(frame)
}

// lint: cold-path
fn maybe_rebuild(scratch: &mut Scratch) {
    let staging: Vec<u8> = Vec::new();
    scratch.rebuild_into(staging);
}

fn fit_with(key: Key, scratch: &mut Scratch) -> Outcome {
    let bank = scratch.bank.clone(); // lint: allow(hot-path-alloc) -- Arc refcount bump handing the bank to the fit; no pixels are copied
    bank.apply(key)
}
