// The manifest and the seams agree exactly: every `interleave::point`
// is listed in COVERED_POINTS and every entry names a real point.

const COVERED_POINTS: [&str; 2] = ["shard.evict", "shard.insert"];

pub fn insert(shard: &Shard, key: Key) {
    interleave::point("shard.insert");
    shard.put(key);
    interleave::point("shard.evict");
}
