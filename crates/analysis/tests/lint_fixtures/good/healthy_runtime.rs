// Idiomatic post-migration runtime code: ordered locks, healthy
// recovery, justified orderings, and test-only unwraps.
use hebs_analysis::{lock_healthy, LockClass, OrderedMutex};
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Shard {
    entries: OrderedMutex<Vec<u64>>,
    poison_recoveries: AtomicU64,
}

impl Shard {
    pub fn push(&self, value: u64) {
        let mut entries = lock_healthy(self.entries.lock(), || {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed); // ordering: monotonic counter, read only in snapshots
        });
        entries.push(value);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_here() {
        let shard = super::Shard {
            entries: hebs_analysis::OrderedMutex::new(
                hebs_analysis::LockClass::CacheShard,
                Vec::new(),
            ),
            poison_recoveries: std::sync::atomic::AtomicU64::new(0),
        };
        shard.push(1);
        assert_eq!(shard.entries.lock().unwrap().len(), 1);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
