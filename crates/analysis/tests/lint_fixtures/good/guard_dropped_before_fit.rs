// Guard hygiene around heavy work, three shapes the pass accepts: a
// block scope ending the guard before the characterize call, an explicit
// `drop` before writer I/O, and a guard consumed within one statement
// (guarded data access, not a hold-across).

pub struct Bank {
    slots: OrderedMutex<Slots>,
}

pub fn build() -> Bank {
    Bank {
        slots: OrderedMutex::new(LockClass::Sketch, Slots::default()),
    }
}

pub fn rebuild(bank: &Bank) -> Curve {
    let sketch = {
        let guard = bank.slots.lock();
        guard.sketch()
    };
    characterize_from(sketch)
}

pub fn flush(bank: &Bank, out: &mut ByteSink) {
    let guard = bank.slots.lock();
    let bytes = guard.encode();
    drop(guard);
    out.write_all(&bytes);
}

pub fn occupancy_fit(bank: &Bank) -> Curve {
    let len = bank.slots.lock().len();
    fit_for(len)
}
