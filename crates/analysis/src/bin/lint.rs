//! The serve-path lint binary: `cargo run -p hebs-analysis --bin lint`.
//!
//! With no arguments, scans the whole workspace (every `.rs` under
//! `crates/*/src` and the facade's `src/`) and exits nonzero if any rule
//! fires. With `--fixture <file>` (repeatable), scans each file as a lint
//! self-test fixture — every rule armed — which is how the fixture tests
//! drive the binary.

use hebs_analysis::lint;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fixtures: Vec<PathBuf> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fixture" => match iter.next() {
                Some(path) => fixtures.push(PathBuf::from(path)),
                None => {
                    eprintln!("lint: --fixture requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("lint: unknown argument `{other}`");
                eprintln!("usage: lint [--fixture <file>]...");
                return ExitCode::from(2);
            }
        }
    }

    let result = if fixtures.is_empty() {
        // The binary lives at crates/analysis; the workspace root is two
        // directories up, independent of the invocation directory.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf);
        match root {
            Some(root) => lint::scan_workspace(&root).map(|(scanned, findings)| {
                println!("lint: scanned {scanned} files under {}", root.display());
                findings
            }),
            None => {
                eprintln!("lint: cannot locate the workspace root");
                return ExitCode::from(2);
            }
        }
    } else {
        fixtures.iter().try_fold(Vec::new(), |mut all, path| {
            all.extend(lint::scan_fixture(path)?);
            Ok(all)
        })
    };

    match result {
        Ok(findings) if findings.is_empty() => {
            println!("lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("lint: {error}");
            ExitCode::from(2)
        }
    }
}
