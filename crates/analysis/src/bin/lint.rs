//! The serve-path lint binary: `cargo run -p hebs-analysis --bin lint`.
//!
//! With no arguments, scans the whole workspace (every `.rs` under
//! `crates/*/src` and the facade's `src/`, plus the interleaving replay
//! manifest) and exits nonzero if any rule fires. With `--fixture <file>`
//! (repeatable), scans each file as a lint self-test fixture — every rule
//! armed — which is how the fixture tests drive the binary.
//!
//! `--json <path>` additionally writes the findings as a machine-readable
//! report (the CI `analysis` job uploads it as an artifact, mirroring the
//! bench JSON flow). `--budget-seconds <n>` fails the run when the scan
//! itself exceeds the wall-clock budget, so the analyzer can't quietly
//! become the slowest job in CI.

use hebs_analysis::lint;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fixtures: Vec<PathBuf> = Vec::new();
    let mut json_path: Option<PathBuf> = None;
    let mut budget_seconds: Option<u64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fixture" => match iter.next() {
                Some(path) => fixtures.push(PathBuf::from(path)),
                None => {
                    eprintln!("lint: --fixture requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => match iter.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("lint: --json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--budget-seconds" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(seconds) => budget_seconds = Some(seconds),
                None => {
                    eprintln!("lint: --budget-seconds requires an integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("lint: unknown argument `{other}`");
                eprintln!(
                    "usage: lint [--fixture <file>]... [--json <path>] [--budget-seconds <n>]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let started = Instant::now();
    let result = if fixtures.is_empty() {
        // The binary lives at crates/analysis; the workspace root is two
        // directories up, independent of the invocation directory.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf);
        match root {
            Some(root) => lint::scan_workspace(&root).map(|(scanned, findings)| {
                println!("lint: scanned {scanned} files under {}", root.display());
                (scanned, findings)
            }),
            None => {
                eprintln!("lint: cannot locate the workspace root");
                return ExitCode::from(2);
            }
        }
    } else {
        fixtures
            .iter()
            .try_fold(Vec::new(), |mut all, path| {
                all.extend(lint::scan_fixture(path)?);
                Ok(all)
            })
            .map(|findings| (fixtures.len(), findings))
    };

    let (scanned, findings) = match result {
        Ok(pair) => pair,
        Err(error) => {
            eprintln!("lint: {error}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();

    if let Some(path) = &json_path {
        if let Err(error) = std::fs::write(path, lint::findings_json(scanned, &findings)) {
            eprintln!("lint: cannot write {}: {error}", path.display());
            return ExitCode::from(2);
        }
        println!("lint: wrote {}", path.display());
    }

    let mut over_budget = false;
    if let Some(budget) = budget_seconds {
        let secs = elapsed.as_secs_f64();
        if secs > budget as f64 {
            eprintln!(
                "lint: scan took {secs:.2}s, over the {budget}s self-runtime budget; the \
                 analyzer must stay cheap enough to run on every push"
            );
            over_budget = true;
        } else {
            println!("lint: scan took {secs:.2}s (budget {budget}s)");
        }
    }

    if findings.is_empty() && !over_budget {
        println!("lint: clean");
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        println!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
