//! A small std-only Rust lexer for the serve-path lint engine.
//!
//! The lint passes need more structure than line regexes can see: whether
//! a pattern sits inside a string literal or a comment, which braces match,
//! which `fn` item a token belongs to, and whether that item is gated by
//! `#[cfg(test)]`. This module supplies exactly that — a token stream with
//! line numbers ([`lex`]), and an item layer ([`Lexed`]) that extracts
//! functions (with their enclosing `impl` type and attached `// lint:`
//! annotations), structs, test regions and waiver comments.
//!
//! It is *not* a parser: no expressions, no types, no name resolution.
//! Every consumer is a heuristic lint pass, and the contract is only that
//! token boundaries, comment/string classification and brace matching are
//! exact. That is what makes the passes immune to the failure modes of the
//! old line scanner (patterns inside strings, waivers inside code, brace
//! counting thrown off by braces in comments).

use std::collections::HashMap;

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `serve`, `Ordering`).
    Ident,
    /// A numeric literal (`0xff_u64`, `1.5e-3`); the exact value is never
    /// interpreted, only the token boundary matters.
    Number,
    /// A string literal, including raw (`r#"…"#`) and byte (`b"…"`) forms.
    /// `text` holds the literal's *content* without quotes or escapes
    /// processing, so passes can match point names exactly.
    Str,
    /// A character or byte-character literal.
    Char,
    /// A lifetime (`'a`) — distinguished from [`TokenKind::Char`] so a
    /// lifetime never swallows code as string content.
    Lifetime,
    /// A single punctuation character (`{`, `.`, `#`, …).
    Punct,
    /// A `//` comment through end of line (including `///` and `//!` doc
    /// comments); `text` excludes the leading slashes.
    LineComment,
    /// A `/* … */` comment (nesting-aware); `text` excludes the delimiters.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (for [`TokenKind::Str`]/comments: the content only).
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: usize,
}

impl Token {
    fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `source` into a token stream. Never fails: unterminated strings
/// or comments simply end at EOF, which is the forgiving behavior a lint
/// wants (the compiler will reject the file anyway).
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    let count_lines = |s: &str| s.bytes().filter(|&b| b == b'\n').count();

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text: source[start..end].to_string(),
                    line,
                });
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i + 2;
                let mut depth = 1usize;
                let mut end = start;
                while end < bytes.len() && depth > 0 {
                    if bytes[end] == b'/' && bytes.get(end + 1) == Some(&b'*') {
                        depth += 1;
                        end += 2;
                    } else if bytes[end] == b'*' && bytes.get(end + 1) == Some(&b'/') {
                        depth -= 1;
                        end += 2;
                    } else {
                        end += 1;
                    }
                }
                let content_end = end.saturating_sub(2).max(start);
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    text: source[start..content_end].to_string(),
                    line,
                });
                line += count_lines(&source[i..end]);
                i = end;
            }
            b'"' => {
                let (content, end) = scan_string(source, i);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: content,
                    line,
                });
                line += count_lines(&source[i..end]);
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let next = bytes.get(i + 1).copied();
                let is_lifetime = next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
                    && bytes.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    let start = i + 1;
                    let mut end = start;
                    while end < bytes.len() && is_ident_byte(bytes[end]) {
                        end += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..end].to_string(),
                        line,
                    });
                    i = end;
                } else {
                    let mut end = i + 1;
                    while end < bytes.len() {
                        match bytes[end] {
                            b'\\' => end += 2,
                            b'\'' => {
                                end += 1;
                                break;
                            }
                            b'\n' => break,
                            _ => end += 1,
                        }
                    }
                    let end = end.min(bytes.len());
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text: source[i..end].to_string(),
                        line,
                    });
                    i = end;
                }
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                let mut end = i;
                while end < bytes.len()
                    && (is_ident_byte(bytes[end])
                        || bytes[end] == b'.' && bytes.get(end + 1).is_some_and(u8::is_ascii_digit))
                {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[start..end].to_string(),
                    line,
                });
                i = end;
            }
            _ if is_ident_start(b) => {
                let start = i;
                let mut end = i;
                while end < bytes.len() && is_ident_byte(bytes[end]) {
                    end += 1;
                }
                // Raw / byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#` — the prefix ident is part of the literal.
                let text = &source[start..end];
                if matches!(text, "r" | "b" | "br" | "rb")
                    && end < bytes.len()
                    && (bytes[end] == b'"' || (bytes[end] == b'#' && text.contains('r')))
                {
                    let (content, lit_end) = scan_raw_or_byte_string(source, start, end);
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: content,
                        line,
                    });
                    line += count_lines(&source[start..lit_end]);
                    i = lit_end;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: text.to_string(),
                        line,
                    });
                    i = end;
                }
            }
            _ => {
                // `::` and `=>` are single tokens: every pass matches on
                // paths and match arms, and splitting them into bare
                // colons makes those patterns ambiguous with `:` type
                // ascription.
                let glued = match (b, bytes.get(i + 1)) {
                    (b':', Some(&b':')) => Some("::"),
                    (b'=', Some(&b'>')) => Some("=>"),
                    _ => None,
                };
                if let Some(text) = glued {
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: text.to_string(),
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: (b as char).to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    tokens
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans a plain `"…"` string starting at `start` (the opening quote).
/// Returns the unquoted content and the index one past the closing quote.
fn scan_string(source: &str, start: usize) -> (String, usize) {
    let bytes = source.as_bytes();
    let mut end = start + 1;
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => {
                return (source[start + 1..end].to_string(), end + 1);
            }
            _ => end += 1,
        }
    }
    (source[start + 1..].to_string(), bytes.len())
}

/// Scans a raw or byte string whose prefix ident spans `prefix..quote`.
/// Returns the content and the index one past the closing delimiter.
fn scan_raw_or_byte_string(source: &str, prefix: usize, quote: usize) -> (String, usize) {
    let bytes = source.as_bytes();
    let is_raw = source[prefix..quote].contains('r');
    if !is_raw {
        // `b"…"` — ordinary escape rules.
        let (content, end) = scan_string(source, quote);
        return (content, end);
    }
    let mut hashes = 0usize;
    let mut at = quote;
    while bytes.get(at) == Some(&b'#') {
        hashes += 1;
        at += 1;
    }
    if bytes.get(at) != Some(&b'"') {
        // Not actually a raw string (e.g. `r#` in macro_rules); treat the
        // prefix as an ident-adjacent punct run and move one byte on.
        return (String::new(), prefix + 1);
    }
    let content_start = at + 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat(b'#').take(hashes))
        .collect();
    let mut end = content_start;
    while end < bytes.len() {
        if bytes[end] == b'"' && bytes[end..].starts_with(&closer) {
            return (source[content_start..end].to_string(), end + closer.len());
        }
        end += 1;
    }
    (source[content_start..].to_string(), bytes.len())
}

/// One `fn` item extracted from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The enclosing `impl` block's type name, when the function is an
    /// associated item (`impl Engine { fn serve … }` → `Engine`).
    pub qualifier: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based line of the first attribute / doc comment attached to the
    /// item (equals `sig_line` for a bare function).
    pub item_line: usize,
    /// Code-token index range of the body, *excluding* the braces; `None`
    /// for a bodyless signature (trait method, extern).
    pub body: Option<(usize, usize)>,
    /// Whether the function sits in a `#[cfg(test)]` region or carries
    /// `#[test]` itself.
    pub is_test: bool,
}

/// One `struct` item with its fields (tuple structs yield no fields).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub sig_line: usize,
    /// Line of the first attached attribute / doc comment.
    pub item_line: usize,
    /// Named fields as `(name, type tokens joined by spaces, line)`.
    pub fields: Vec<(String, String, usize)>,
    /// Whether the struct sits in a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// A lexed source file with its item layer: code-token indexing, test
/// regions, functions, structs and line-attached `// lint:` annotations.
#[derive(Debug)]
pub struct Lexed {
    tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    code: Vec<usize>,
    /// Per-code-token flag: inside a `#[cfg(test)]`-gated item (or a
    /// `#[test]` function).
    test_mask: Vec<bool>,
    /// Extracted functions, in source order.
    functions: Vec<FnItem>,
    /// Extracted structs, in source order.
    structs: Vec<StructItem>,
    /// `// lint: …` annotation bodies keyed by the code line they apply
    /// to: the comment's own line for a trailing comment, the next code
    /// line for a standalone one.
    annotations: HashMap<usize, Vec<String>>,
    /// Number of lines in the file.
    line_count: usize,
}

impl Lexed {
    /// Lexes `source` and builds the item layer.
    pub fn new(source: &str) -> Self {
        let tokens = lex(source);
        let code: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].is_code()).collect();
        let test_mask = compute_test_mask(&tokens, &code);
        let annotations = collect_annotations(&tokens);
        let mut lexed = Lexed {
            tokens,
            code,
            test_mask,
            functions: Vec::new(),
            structs: Vec::new(),
            annotations,
            line_count: source.lines().count(),
        };
        lexed.functions = extract_functions(&lexed);
        lexed.structs = extract_structs(&lexed);
        lexed
    }

    /// Number of code tokens (comments excluded).
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// The `ci`-th code token.
    pub fn code_tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Whether the `ci`-th code token lies in a test region.
    pub fn in_test(&self, ci: usize) -> bool {
        self.test_mask.get(ci).copied().unwrap_or(false)
    }

    /// All tokens including comments, in source order.
    pub fn all_tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Extracted `fn` items in source order.
    pub fn functions(&self) -> &[FnItem] {
        &self.functions
    }

    /// Extracted `struct` items in source order.
    pub fn structs(&self) -> &[StructItem] {
        &self.structs
    }

    /// Lines in the file (for whole-file findings).
    pub fn line_count(&self) -> usize {
        self.line_count
    }

    /// `// lint: …` annotation bodies attached to `line` (1-based).
    pub fn annotations_on(&self, line: usize) -> &[String] {
        self.annotations.get(&line).map_or(&[], Vec::as_slice)
    }

    /// Whether any line in `lines` carries an annotation whose body starts
    /// with `prefix` (e.g. `"hot-path"`); returns the full body if so.
    pub fn annotation_in(
        &self,
        lines: std::ops::RangeInclusive<usize>,
        prefix: &str,
    ) -> Option<&str> {
        for line in lines {
            for body in self.annotations_on(line) {
                if body.starts_with(prefix) {
                    return Some(body);
                }
            }
        }
        None
    }

    /// Does the code token sequence starting at `ci` match `pattern`
    /// text-for-text? (`["Ordering", "::", "Relaxed"]`)
    pub fn seq(&self, ci: usize, pattern: &[&str]) -> bool {
        pattern.iter().enumerate().all(|(k, want)| {
            self.code
                .get(ci + k)
                .is_some_and(|&ti| self.tokens[ti].text == *want)
        })
    }

    /// Whether any line comment on `line` contains `needle`.
    pub fn line_comment_contains(&self, line: usize, needle: &str) -> bool {
        self.tokens
            .iter()
            .any(|t| t.kind == TokenKind::LineComment && t.line == line && t.text.contains(needle))
    }

    /// Finds the code index of the `}` matching the `{` at code index
    /// `open` (which must be a `{`). Returns the last index on imbalance.
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for ci in open..self.code_len() {
            match self.code_tok(ci).text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return ci;
                    }
                }
                _ => {}
            }
        }
        self.code_len().saturating_sub(1)
    }
}

/// Collects `lint: …` annotation bodies from comments. A trailing comment
/// (code earlier on the same line) applies to its own line; a standalone
/// comment applies to the next line that has a code token.
fn collect_annotations(tokens: &[Token]) -> HashMap<usize, Vec<String>> {
    let mut code_lines: Vec<usize> = tokens
        .iter()
        .filter(|t| t.is_code())
        .map(|t| t.line)
        .collect();
    code_lines.dedup();
    let mut map: HashMap<usize, Vec<String>> = HashMap::new();
    for token in tokens {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let Some(body) = annotation_body(&token.text) else {
            continue;
        };
        let has_code_on_line = code_lines.binary_search(&token.line).is_ok();
        let apply_line = if has_code_on_line {
            token.line
        } else {
            match code_lines.binary_search(&token.line) {
                Err(pos) if pos < code_lines.len() => code_lines[pos],
                _ => token.line,
            }
        };
        map.entry(apply_line).or_default().push(body.to_string());
    }
    map
}

/// Extracts the annotation body from a comment whose text *starts* with
/// `lint:` — `" lint: hot-path"` → `"hot-path"`. A `lint:` mentioned
/// mid-comment (prose, rustdoc examples) is not an annotation.
pub fn annotation_body(comment: &str) -> Option<&str> {
    Some(comment.trim_start().strip_prefix("lint:")?.trim())
}

/// Marks code tokens gated by `#[cfg(test)]` / `#[cfg(all(test, …)))]` /
/// `#[test]`: the attribute tokens themselves, any stacked attributes, and
/// the braced (or `;`-terminated) item they gate.
fn compute_test_mask(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let text = |ci: usize| tokens[code[ci]].text.as_str();
    let mut mask = vec![false; code.len()];
    let mut ci = 0usize;
    while ci < code.len() {
        if text(ci) == "#" && ci + 1 < code.len() && text(ci + 1) == "[" {
            let attr_end = matching_bracket(tokens, code, ci + 1);
            if attr_is_test(tokens, code, ci + 1, attr_end) {
                // Mark this attribute, any stacked attributes, and the item.
                let mut end = attr_end;
                let mut at = attr_end + 1;
                while at + 1 < code.len() && text(at) == "#" && text(at + 1) == "[" {
                    let next_end = matching_bracket(tokens, code, at + 1);
                    end = next_end;
                    at = next_end + 1;
                }
                // Scan the gated item to its end: the matching `}` of the
                // first top-level `{`, or the first top-level `;`.
                let mut depth = 0i64;
                while at < code.len() {
                    match text(at) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                end = at;
                                break;
                            }
                        }
                        ";" if depth == 0 => {
                            end = at;
                            break;
                        }
                        _ => {}
                    }
                    at += 1;
                }
                if at >= code.len() {
                    end = code.len() - 1;
                }
                for slot in mask.iter_mut().take(end + 1).skip(ci) {
                    *slot = true;
                }
                ci = end + 1;
                continue;
            }
            ci = attr_end + 1;
            continue;
        }
        ci += 1;
    }
    mask
}

/// Code index of the `]` matching the `[` at `open` (a code index).
fn matching_bracket(tokens: &[Token], code: &[usize], open: usize) -> usize {
    let mut depth = 0usize;
    for ci in open..code.len() {
        match tokens[code[ci]].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return ci;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

/// Whether the attribute spanning code indices `open..=close` (the square
/// brackets) gates test code: `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`, `#[cfg(any(test, …))]` — but not
/// `#[cfg(not(test))]`.
fn attr_is_test(tokens: &[Token], code: &[usize], open: usize, close: usize) -> bool {
    let text = |ci: usize| tokens[code[ci]].text.as_str();
    // Bare `#[test]`.
    if close == open + 2 && text(open + 1) == "test" {
        return true;
    }
    if text(open + 1) != "cfg" {
        return false;
    }
    // Walk the cfg expression keeping a stack of predicate heads; `test`
    // counts unless it sits under a `not(…)`.
    let mut heads: Vec<&str> = Vec::new();
    let mut ci = open + 2;
    while ci < close {
        let t = text(ci);
        if t == "(" {
            // The head is the ident just before this paren (if any).
            let head = if ci > open + 2 { text(ci - 1) } else { "" };
            heads.push(head);
        } else if t == ")" {
            heads.pop();
        } else if t == "test" && !heads.contains(&"not") {
            return true;
        }
        ci += 1;
    }
    false
}

/// Extracts `fn` items, associating each with its innermost enclosing
/// `impl` block's type name and its test gating.
fn extract_functions(lexed: &Lexed) -> Vec<FnItem> {
    let n = lexed.code_len();
    let text = |ci: usize| lexed.code_tok(ci).text.as_str();
    // First pass: impl regions as (body_open, body_close, type_name).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    for ci in 0..n {
        if text(ci) == "impl" && lexed.code_tok(ci).kind == TokenKind::Ident {
            if let Some((open, name)) = impl_header(lexed, ci) {
                let close = lexed.matching_brace(open);
                impls.push((open, close, name));
            }
        }
    }
    let qualifier_for = |ci: usize| -> Option<String> {
        impls
            .iter()
            .filter(|(open, close, _)| *open < ci && ci <= *close)
            .min_by_key(|(open, close, _)| close - open)
            .map(|(_, _, name)| name.clone())
    };

    let mut functions = Vec::new();
    for ci in 0..n {
        if text(ci) != "fn" || lexed.code_tok(ci).kind != TokenKind::Ident {
            continue;
        }
        let Some(name_ci) = (ci + 1 < n).then_some(ci + 1) else {
            continue;
        };
        if lexed.code_tok(name_ci).kind != TokenKind::Ident {
            continue;
        }
        let name = text(name_ci).to_string();
        let sig_line = lexed.code_tok(ci).line;
        // Find the body `{` or the terminating `;` at bracket depth 0.
        let mut paren = 0i64;
        let mut square = 0i64;
        let mut body = None;
        let mut at = name_ci + 1;
        while at < n {
            match text(at) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => square += 1,
                "]" => square -= 1,
                "{" if paren == 0 && square == 0 => {
                    let close = lexed.matching_brace(at);
                    body = Some((at + 1, close));
                    break;
                }
                ";" if paren == 0 && square == 0 => break,
                _ => {}
            }
            at += 1;
        }
        // The item starts at its first stacked attribute (for annotation
        // attachment): walk attributes backwards from the `fn`.
        let mut item_start = ci;
        loop {
            // `#[…]` directly before: find a `]` whose matching `[` is
            // preceded by `#`.
            if item_start >= 1 && text(item_start - 1) == "]" {
                let mut depth = 0i64;
                let mut k = item_start - 1;
                let mut found = None;
                loop {
                    match text(k) {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                found = Some(k);
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if let Some(open) = found {
                    if open >= 1 && text(open - 1) == "#" {
                        item_start = open - 1;
                        continue;
                    }
                }
            }
            // `pub`, `pub(crate)`, `const`, `unsafe`, `async` qualifiers.
            if item_start >= 1 && matches!(text(item_start - 1), ")" | "pub" | "const" | "async") {
                if text(item_start - 1) == ")" {
                    break;
                }
                item_start -= 1;
                continue;
            }
            break;
        }
        let item_line = lexed.code_tok(item_start).line;
        functions.push(FnItem {
            name,
            qualifier: qualifier_for(ci),
            sig_line,
            item_line,
            body,
            is_test: lexed.in_test(ci),
        });
    }
    functions
}

/// Parses an `impl` header starting at the `impl` keyword: returns the
/// code index of the body `{` and the implemented type's name (the final
/// path segment; for `impl Trait for Type`, the type after `for`).
fn impl_header(lexed: &Lexed, impl_ci: usize) -> Option<(usize, String)> {
    let n = lexed.code_len();
    let text = |ci: usize| lexed.code_tok(ci).text.as_str();
    let mut angle = 0i64;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut at = impl_ci + 1;
    while at < n {
        let t = text(at);
        match t {
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "{" if angle == 0 => {
                let name = after_for.or(last_ident)?;
                return Some((at, name));
            }
            ";" if angle == 0 => return None,
            "for" if angle == 0 => saw_for = true,
            _ => {
                if lexed.code_tok(at).kind == TokenKind::Ident && angle == 0 && t != "where" {
                    if saw_for {
                        after_for = Some(t.to_string());
                    } else {
                        last_ident = Some(t.to_string());
                    }
                }
            }
        }
        at += 1;
    }
    None
}

/// Extracts `struct` items with named fields.
fn extract_structs(lexed: &Lexed) -> Vec<StructItem> {
    let n = lexed.code_len();
    let text = |ci: usize| lexed.code_tok(ci).text.as_str();
    let mut structs = Vec::new();
    for ci in 0..n {
        if text(ci) != "struct" || lexed.code_tok(ci).kind != TokenKind::Ident {
            continue;
        }
        if ci + 1 >= n || lexed.code_tok(ci + 1).kind != TokenKind::Ident {
            continue;
        }
        let name = text(ci + 1).to_string();
        let sig_line = lexed.code_tok(ci).line;
        // Skip generics to the body `{` (a `;` or `(` first means a unit
        // or tuple struct — no named fields).
        let mut angle = 0i64;
        let mut at = ci + 2;
        let mut open = None;
        while at < n {
            match text(at) {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "{" if angle == 0 => {
                    open = Some(at);
                    break;
                }
                ";" | "(" if angle == 0 => break,
                _ => {}
            }
            at += 1;
        }
        let Some(open) = open else {
            structs.push(StructItem {
                name,
                sig_line,
                item_line: sig_line,
                fields: Vec::new(),
                is_test: lexed.in_test(ci),
            });
            continue;
        };
        let close = lexed.matching_brace(open);
        // Fields: at depth 1 inside the body, `name : type…,`.
        let mut fields = Vec::new();
        let mut depth = 0i64;
        let mut at = open;
        while at <= close {
            match text(at) {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            // A field name: ident at body depth 1 followed by a single `:`
            // (not `::`).
            if depth == 1
                && lexed.code_tok(at).kind == TokenKind::Ident
                && at < close
                && text(at + 1) == ":"
                && (at + 2 > close || text(at + 2) != ":")
                && (at == open + 1 || matches!(text(at - 1), "{" | "," | "]" | ")"))
            {
                // Collect the type tokens to the `,` (or `}`) at depth 1.
                let mut ty = String::new();
                let mut d = 0i64;
                let mut k = at + 2;
                while k < close {
                    let t = text(k);
                    match t {
                        "(" | "[" | "<" | "{" => d += 1,
                        ")" | "]" | ">" | "}" => d -= 1,
                        "," if d <= 0 => break,
                        _ => {}
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(t);
                    k += 1;
                }
                fields.push((text(at).to_string(), ty, lexed.code_tok(at).line));
            }
            at += 1;
        }
        structs.push(StructItem {
            name,
            sig_line,
            item_line: sig_line,
            fields,
            is_test: lexed.in_test(ci),
        });
    }
    structs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_and_code_are_distinguished() {
        let lexed = Lexed::new(
            "fn f() { let s = \"a // not a comment\"; } // trailing\n/* block { */ fn g() {}\n",
        );
        let strs: Vec<&str> = lexed
            .all_tokens()
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["a // not a comment"]);
        let comments: Vec<TokenKind> = lexed
            .all_tokens()
            .iter()
            .filter(|t| !t.is_code())
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            comments,
            vec![TokenKind::LineComment, TokenKind::BlockComment]
        );
        // The `{` inside the block comment does not break brace matching.
        assert_eq!(lexed.functions().len(), 2);
        assert!(lexed.functions().iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let lexed = Lexed::new("fn f<'a>(x: &'a str) -> &'a str { r#\"raw \"quoted\"\"# }\n");
        let raw: Vec<&str> = lexed
            .all_tokens()
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(raw, vec!["raw \"quoted\""]);
        let lifetimes = lexed
            .all_tokens()
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn test_regions_cover_gated_items() {
        let source =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let lexed = Lexed::new(source);
        let fns = lexed.functions();
        assert_eq!(fns.len(), 3);
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test, "fn inside #[cfg(test)] mod");
        assert!(!fns[2].is_test, "item after the gated mod");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lexed = Lexed::new("#[cfg(not(test))]\nfn shipping() { x.unwrap(); }\n");
        assert!(!lexed.functions()[0].is_test);
        let gated = Lexed::new("#[cfg(all(test, feature = \"lockdep\"))]\nmod tests {}\n");
        assert!((0..gated.code_len()).any(|ci| gated.in_test(ci)));
    }

    #[test]
    fn functions_carry_their_impl_qualifier() {
        let source = "impl Engine {\n    fn serve(&self) {}\n}\nimpl Clone for Shard {\n    fn clone(&self) -> Self { todo!() }\n}\nfn free() {}\n";
        let lexed = Lexed::new(source);
        let fns = lexed.functions();
        assert_eq!(fns[0].qualifier.as_deref(), Some("Engine"));
        assert_eq!(fns[1].qualifier.as_deref(), Some("Shard"));
        assert_eq!(fns[2].qualifier, None);
    }

    #[test]
    fn annotations_attach_to_trailing_and_next_code_line() {
        let source = "// lint: hot-path\nfn serve() {}\nfn other() {} // lint: cold-path rebuild\n";
        let lexed = Lexed::new(source);
        assert_eq!(lexed.annotations_on(2), ["hot-path"]);
        assert_eq!(lexed.annotations_on(3), ["cold-path rebuild"]);
        assert!(lexed.annotation_in(2..=2, "hot-path").is_some());
    }

    #[test]
    fn structs_expose_named_fields_with_types() {
        let source = "pub struct Stats {\n    frames: AtomicU64,\n    map: HashMap<u64, Vec<u8>>,\n}\nstruct Unit;\n";
        let lexed = Lexed::new(source);
        let stats = &lexed.structs()[0];
        assert_eq!(stats.name, "Stats");
        assert_eq!(stats.fields[0].0, "frames");
        assert!(stats.fields[0].1.contains("AtomicU64"));
        assert_eq!(stats.fields[1].0, "map");
        assert_eq!(lexed.structs()[1].fields.len(), 0);
    }
}
