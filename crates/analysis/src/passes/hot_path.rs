//! The hot-path allocation pass: functions reachable from the serve path
//! must not allocate.
//!
//! Roots are functions annotated `// lint: hot-path` (the serve entry
//! points in `crates/runtime/src/engine.rs`). The reachable set is grown
//! by a same-crate call-name closure: every `name(` / `recv.name(` /
//! `Type::name(` site inside a hot function pulls in the crate's
//! functions of that name (restricted to the `impl Type` block when the
//! call is qualified). A function annotated `// lint: cold-path` stops
//! the expansion — that is how the single-flight recharacterization
//! entry, which legitimately allocates while rebuilding a bank off the
//! serve path, is kept out of the hot set.
//!
//! Inside the hot set these allocate and are banned: `Vec::new`,
//! `Vec::with_capacity`, `Box::new`, `String::new`, `String::from`,
//! `vec![…]`, `format!(…)`, and the method calls `.clone()`, `.to_vec()`,
//! `.to_string()`, `.to_owned()`. `Arc::clone(&x)` is the idiomatic
//! refcount bump and stays legal — which is also the enforcement nudge to
//! write it that way in serve code instead of `.clone()`.
//!
//! Name-based closure over-approximates (an unqualified call pulls in
//! every same-named function in the crate) and never resolves across
//! crates — the zero-allocation fit path in `hebs-core` is pinned by its
//! own FitScratch counters at runtime. Waivers must carry a reason:
//! `// lint: allow(hot-path-alloc) -- why this allocation is bounded`.

use super::{Sink, SourceFile, Workspace};
use crate::lexer::{FnItem, TokenKind};
use std::collections::{BTreeSet, HashMap};

/// Method names that allocate when called on a receiver.
const BANNED_METHODS: [&str; 4] = ["clone", "to_vec", "to_string", "to_owned"];
/// `Type::method` pairs that allocate.
const BANNED_QUALIFIED: [(&str, &str); 5] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
];
/// Macros that allocate.
const BANNED_MACROS: [&str; 2] = ["vec", "format"];

/// Runs the pass over every crate in the workspace that declares at least
/// one `// lint: hot-path` root.
pub fn run(workspace: &Workspace, sink: &mut Sink<'_>) {
    let mut crates: BTreeSet<&str> = BTreeSet::new();
    for file in &workspace.files {
        crates.insert(&file.crate_name);
    }
    for crate_name in crates {
        run_crate(workspace, crate_name, sink);
    }
}

/// A function reference: (index into crate file list, index into that
/// file's function list).
type FnRef = (usize, usize);

fn run_crate(workspace: &Workspace, crate_name: &str, sink: &mut Sink<'_>) {
    let files: Vec<&SourceFile> = workspace.crate_files(crate_name);
    let mut by_name: HashMap<&str, Vec<FnRef>> = HashMap::new();
    let mut roots: Vec<FnRef> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, item) in file.lexed.functions().iter().enumerate() {
            if item.is_test {
                continue;
            }
            by_name
                .entry(item.name.as_str())
                .or_default()
                .push((fi, gi));
            if file
                .lexed
                .annotation_in(item.item_line..=item.sig_line, "hot-path")
                .is_some()
            {
                roots.push((fi, gi));
            }
        }
    }
    if roots.is_empty() {
        return;
    }

    let item = |r: FnRef| -> &FnItem { &files[r.0].lexed.functions()[r.1] };
    let is_cold = |r: FnRef| -> bool {
        let f = item(r);
        files[r.0]
            .lexed
            .annotation_in(f.item_line..=f.sig_line, "cold-path")
            .is_some()
    };

    // Breadth-first closure from the roots; remember which root first
    // reached each function so findings can name the serve entry.
    let mut reached: HashMap<FnRef, String> = HashMap::new();
    let mut queue: Vec<FnRef> = Vec::new();
    for &root in &roots {
        reached.insert(root, item(root).name.clone());
        queue.push(root);
    }
    while let Some(current) = queue.pop() {
        let root = reached[&current].clone();
        for (callee, qualifier) in call_sites(files[current.0], item(current)) {
            let Some(candidates) = by_name.get(callee.as_str()) else {
                continue;
            };
            for &target in candidates {
                if let Some(q) = &qualifier {
                    if item(target).qualifier.as_deref() != Some(q.as_str()) {
                        continue;
                    }
                }
                if is_cold(target) || reached.contains_key(&target) {
                    continue;
                }
                reached.insert(target, root.clone());
                queue.push(target);
            }
        }
    }

    let mut ordered: Vec<(&FnRef, &String)> = reached.iter().collect();
    ordered.sort_by_key(|(r, _)| **r);
    for (&(fi, gi), root) in ordered {
        check_fn(files[fi], &files[fi].lexed.functions()[gi], root, sink);
    }
}

/// Extracts call sites from a function body as `(callee, qualifier)`:
/// `recv.name(…)` and `name(…)` yield `(name, None)`, `Type::name(…)`
/// yields `(name, Some(Type))`.
fn call_sites(file: &SourceFile, item: &FnItem) -> Vec<(String, Option<String>)> {
    let lexed = &file.lexed;
    let Some((start, end)) = item.body else {
        return Vec::new();
    };
    let mut sites = Vec::new();
    for ci in start..end {
        let token = lexed.code_tok(ci);
        if token.kind != TokenKind::Ident || !lexed.seq(ci + 1, &["("]) {
            continue;
        }
        if ci > 0 && lexed.code_tok(ci - 1).text == "fn" {
            continue; // a nested definition, not a call
        }
        let qualifier = (ci >= 2
            && lexed.code_tok(ci - 1).text == "::"
            && lexed.code_tok(ci - 2).kind == TokenKind::Ident)
            .then(|| lexed.code_tok(ci - 2).text.clone());
        sites.push((token.text.clone(), qualifier));
    }
    sites
}

/// Scans one hot function's body for banned allocation sites.
fn check_fn(file: &SourceFile, item: &FnItem, root: &str, sink: &mut Sink<'_>) {
    let lexed = &file.lexed;
    let Some((start, end)) = item.body else {
        return;
    };
    for ci in start..end {
        let token = lexed.code_tok(ci);
        if token.kind != TokenKind::Ident {
            continue;
        }
        let name = token.text.as_str();
        let flagged: Option<String> = if BANNED_METHODS.contains(&name)
            && ci >= 1
            && lexed.code_tok(ci - 1).text == "."
            && lexed.seq(ci + 1, &["("])
        {
            Some(format!(".{name}()"))
        } else if lexed.seq(ci + 1, &["!"]) && BANNED_MACROS.contains(&name) {
            Some(format!("{name}!"))
        } else {
            BANNED_QUALIFIED
                .iter()
                .find(|(ty, method)| name == *ty && lexed.seq(ci + 1, &["::", method, "("]))
                .map(|(ty, method)| format!("{ty}::{method}"))
        };
        if let Some(what) = flagged {
            sink.report(
                file,
                "hot-path-alloc",
                token.line,
                format!(
                    "`{what}` allocates in serve-path fn `{}` (reachable from hot-path root \
                     `{root}`); preallocate, move the work behind a `// lint: cold-path` \
                     boundary, or waive with a written justification",
                    item.name
                ),
            );
        }
    }
}
