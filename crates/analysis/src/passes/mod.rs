//! The lint pass framework: workspace model, waivers, and the reporting
//! sink every pass emits through.
//!
//! A [`Workspace`] is a set of lexed [`SourceFile`]s (plus the optional
//! interleaving-test manifest). Passes walk the token streams and report
//! [`Finding`]s through a [`Sink`], which applies
//! the waiver policy uniformly:
//!
//! * **same-line waiver** — `// lint: allow(rule) -- reason` trailing the
//!   offending line suppresses that rule on that line only; standing
//!   alone on its own line, the same comment covers the next code line
//!   (where rustfmt leaves long justifications);
//! * **file-header waiver** — the same comment *before the first code
//!   token* of the file suppresses the rule for the whole file;
//! * **justification** — waivers for the semantic passes
//!   ([`JUSTIFIED_RULES`]) are honored only when they carry a nonempty
//!   reason after `--` (or after the closing paren); a bare waiver is
//!   ignored and the finding stands;
//! * **staleness** — a waiver that never suppressed anything becomes an
//!   `unused-waiver` finding itself, so stale exemptions get cleaned up.
//!
//! Each pass lives in its own submodule: [`style`] carries the ported
//! line rules (unwrap, atomics, raw-mutex, frame-ingest, snapshot-io,
//! sleep, forbid-unsafe); [`hot_path`], [`lock_order`], [`guard_fit`],
//! [`counters`] and [`yields`] are the semantic passes over the token
//! engine.

pub mod counters;
pub mod guard_fit;
pub mod hot_path;
pub mod lock_order;
pub mod style;
pub mod yields;

use crate::lexer::{annotation_body, Lexed, TokenKind};
use crate::lint::{FileKind, Finding};
use std::cell::Cell;

/// Rules whose waivers must carry a written justification to take effect.
pub const JUSTIFIED_RULES: &[&str] = &[
    "hot-path-alloc",
    "lock-order",
    "guard-across-fit",
    "counter-reconciliation",
    "yield-coverage",
];

/// One parsed waiver comment (`// lint: allow(rule) -- reason`).
#[derive(Debug)]
pub struct Waiver {
    /// The rule the waiver names.
    pub rule: String,
    /// The line the waiver applies to; `None` for a file-header waiver.
    pub line: Option<usize>,
    /// The justification text after the rule (may be empty).
    pub reason: String,
    /// The line the waiver comment itself sits on (for staleness reports).
    pub comment_line: usize,
    /// Set once the waiver suppresses at least one finding.
    pub used: Cell<bool>,
}

/// One lexed source file with its lint scoping metadata.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (used for scoping and
    /// reporting).
    pub path: String,
    /// Which rule set the file gets.
    pub kind: FileKind,
    /// The crate the file belongs to (`runtime` for
    /// `crates/runtime/src/…`, `hebs` for the facade, the path itself for
    /// fixtures) — call-closure and counter passes stay within one crate.
    pub crate_name: String,
    /// The lexed token stream and item layer.
    pub lexed: Lexed,
    /// Waivers parsed from the file's comments.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Lexes `contents` and parses its waivers.
    pub fn new(path: &str, kind: FileKind, contents: &str) -> Self {
        let crate_name = match path.strip_prefix("crates/") {
            Some(rest) => rest.split('/').next().unwrap_or("crate").to_string(),
            None if path.starts_with("src/") => "hebs".to_string(),
            None => path.to_string(),
        };
        let lexed = Lexed::new(contents);
        let waivers = parse_waivers(&lexed);
        SourceFile {
            path: path.to_string(),
            kind,
            crate_name,
            lexed,
            waivers,
        }
    }
}

/// Parses every `lint: allow(rule)` waiver comment in the file. A waiver
/// before the first code token is a file-header waiver; a trailing waiver
/// applies to its own line; a waiver standing alone on a line applies to
/// the next code line (so long justifications can sit above the line they
/// cover, where rustfmt leaves them be).
fn parse_waivers(lexed: &Lexed) -> Vec<Waiver> {
    let code_lines: Vec<usize> = lexed
        .all_tokens()
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|t| t.line)
        .collect();
    let first_code_line = code_lines.first().copied();
    let mut waivers = Vec::new();
    for token in lexed.all_tokens() {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let Some(body) = annotation_body(&token.text) else {
            continue;
        };
        let Some(rest) = body.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim()
            .trim_start_matches("--")
            .trim()
            .to_string();
        let is_header = first_code_line.map_or(true, |line| token.line < line);
        let line = if is_header {
            None
        } else if code_lines.binary_search(&token.line).is_ok() {
            Some(token.line)
        } else {
            // Standalone comment: covers the next line holding code.
            Some(
                code_lines[code_lines
                    .partition_point(|&l| l <= token.line)
                    .min(code_lines.len() - 1)],
            )
        };
        waivers.push(Waiver {
            rule,
            line,
            reason,
            comment_line: token.line,
            used: Cell::new(false),
        });
    }
    waivers
}

/// A lexed workspace: the library files plus the interleaving-test
/// manifest (`tests/interleaving.rs`) when present.
#[derive(Debug)]
pub struct Workspace {
    /// Library and fixture files in scan order.
    pub files: Vec<SourceFile>,
    /// The interleaving replay test, lexed for the yield-coverage pass.
    pub manifest: Option<SourceFile>,
}

impl Workspace {
    /// A workspace holding a single file (unit tests, fixture mode).
    pub fn single(file: SourceFile) -> Self {
        Workspace {
            files: vec![file],
            manifest: None,
        }
    }

    /// Files belonging to `crate_name`, for same-crate passes.
    pub fn crate_files<'a>(&'a self, crate_name: &str) -> Vec<&'a SourceFile> {
        let crate_name = crate_name.to_string();
        self.files
            .iter()
            .filter(|f| f.crate_name == crate_name)
            .collect()
    }
}

/// The reporting funnel: applies waivers and collects findings.
pub struct Sink<'a> {
    out: &'a mut Vec<Finding>,
}

impl<'a> Sink<'a> {
    /// Wraps an output vector.
    pub fn new(out: &'a mut Vec<Finding>) -> Self {
        Sink { out }
    }

    /// Reports one finding against `file` at `line`, unless a same-line or
    /// file-header waiver suppresses it. Waivers for [`JUSTIFIED_RULES`]
    /// only count when they carry a reason.
    pub fn report(&mut self, file: &SourceFile, rule: &'static str, line: usize, message: String) {
        let needs_reason = JUSTIFIED_RULES.contains(&rule);
        let waived = file.waivers.iter().any(|w| {
            w.rule == rule
                && (w.line.is_none() || w.line == Some(line))
                && (!needs_reason || !w.reason.is_empty())
                && {
                    w.used.set(true);
                    true
                }
        });
        if !waived {
            self.out.push(Finding {
                rule,
                path: file.path.clone(),
                line,
                message,
            });
        }
    }
}

/// Runs every pass over the workspace and appends `unused-waiver`
/// findings for waivers nothing used. Findings come back sorted by
/// `(path, line)` so reports and JSON output are deterministic.
pub fn run_all(workspace: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    {
        let mut sink = Sink::new(&mut out);
        for file in &workspace.files {
            style::run(file, &mut sink);
        }
        hot_path::run(workspace, &mut sink);
        lock_order::run(workspace, &mut sink);
        guard_fit::run(workspace, &mut sink);
        counters::run(workspace, &mut sink);
        yields::run(workspace, &mut sink);
    }
    for file in workspace.files.iter().chain(workspace.manifest.as_ref()) {
        for waiver in &file.waivers {
            if !waiver.used.get() {
                out.push(Finding {
                    rule: "unused-waiver",
                    path: file.path.clone(),
                    line: waiver.comment_line,
                    message: format!(
                        "waiver for `{}` never suppressed a finding; remove the stale exemption",
                        waiver.rule
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}
