//! The yield-point coverage pass: every interleaving seam is replayed,
//! and the replay manifest never goes stale.
//!
//! The runtime's race-prone seams carry `interleave::point("…")` markers
//! that the seeded interleaving tests perturb. A point nothing replays is
//! a seam with no schedule coverage; a manifest entry with no matching
//! point is a test that silently stopped exercising anything. This pass
//! cross-checks the two directions:
//!
//! * every `interleave::point("name")` in library code must be listed in
//!   the `COVERED_POINTS` manifest of `tests/interleaving.rs`;
//! * every name in `COVERED_POINTS` must exist as a point in library
//!   code.
//!
//! In fixture mode a single file plays both roles: its points are
//! checked against its own `COVERED_POINTS` const (absent const = empty
//! manifest).

use super::{Sink, Workspace};
use crate::lexer::{Lexed, TokenKind};
use crate::lint::FileKind;
use std::collections::BTreeMap;

/// Collects `interleave::point("name")` literals as `name → first line`.
fn points_in(lexed: &Lexed) -> BTreeMap<String, usize> {
    let mut points = BTreeMap::new();
    for ci in 2..lexed.code_len() {
        let token = lexed.code_tok(ci);
        if token.kind == TokenKind::Str
            && lexed.code_tok(ci - 1).text == "("
            && lexed.code_tok(ci - 2).text == "point"
            && ci >= 3
            && lexed.code_tok(ci - 3).text == "::"
        {
            points.entry(token.text.clone()).or_insert(token.line);
        }
    }
    points
}

/// Collects the string literals of a `COVERED_POINTS` const declaration,
/// or `None` when the file declares no manifest.
fn covered_points(lexed: &Lexed) -> Option<BTreeMap<String, usize>> {
    let name = (0..lexed.code_len()).find(|&ci| lexed.code_tok(ci).text == "COVERED_POINTS")?;
    // Skip past the declaration's type ascription (which may itself
    // contain `;`, as in `[&str; 9]`) to the initializer.
    let start = (name..lexed.code_len()).find(|&ci| lexed.code_tok(ci).text == "=")?;
    let mut covered = BTreeMap::new();
    for ci in start..lexed.code_len() {
        let token = lexed.code_tok(ci);
        if token.text == ";" {
            break;
        }
        if token.kind == TokenKind::Str {
            covered.entry(token.text.clone()).or_insert(token.line);
        }
    }
    Some(covered)
}

/// Runs the coverage check: workspace mode uses the lexed
/// `tests/interleaving.rs` manifest; fixtures are self-contained.
pub fn run(workspace: &Workspace, sink: &mut Sink<'_>) {
    if let Some(manifest) = &workspace.manifest {
        let covered = covered_points(&manifest.lexed).unwrap_or_default();
        let mut all_points: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for (fi, file) in workspace.files.iter().enumerate() {
            if file.kind == FileKind::Fixture {
                continue;
            }
            for (name, line) in points_in(&file.lexed) {
                all_points.entry(name).or_insert((fi, line));
            }
        }
        for (name, &(fi, line)) in &all_points {
            if !covered.contains_key(name) {
                sink.report(
                    &workspace.files[fi],
                    "yield-coverage",
                    line,
                    format!(
                        "yield point `{name}` is not exercised by tests/interleaving.rs; add \
                         it to COVERED_POINTS and a replay scenario"
                    ),
                );
            }
        }
        for (name, &line) in &covered {
            if !all_points.contains_key(name) {
                sink.report(
                    manifest,
                    "yield-coverage",
                    line,
                    format!(
                        "COVERED_POINTS lists `{name}` but no `interleave::point(\"{name}\")` \
                         exists in library code; the replay scenario no longer exercises a \
                         real seam"
                    ),
                );
            }
        }
    }

    for file in &workspace.files {
        if file.kind != FileKind::Fixture {
            continue;
        }
        let points = points_in(&file.lexed);
        let manifest = covered_points(&file.lexed);
        if points.is_empty() && manifest.is_none() {
            continue;
        }
        let covered = manifest.unwrap_or_default();
        for (name, &line) in &points {
            if !covered.contains_key(name) {
                sink.report(
                    file,
                    "yield-coverage",
                    line,
                    format!("yield point `{name}` is not listed in this fixture's COVERED_POINTS"),
                );
            }
        }
        for (name, &line) in &covered {
            if !points.contains_key(name) {
                sink.report(
                    file,
                    "yield-coverage",
                    line,
                    format!("COVERED_POINTS lists `{name}` but the fixture declares no such point"),
                );
            }
        }
    }
}
