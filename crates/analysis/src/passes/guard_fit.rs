//! The guard-across-fit pass: no lock guard held across a fit,
//! characterization, or writer-I/O call.
//!
//! The serve path's latency contract assumes lock hold times are tiny —
//! a guard held across `fit`/`evaluate`/`characterize` work or a stream
//! write turns a shared lock into a convoy. This pass tracks let-bound
//! guards (acquisitions recognized by the machinery shared with
//! [`lock_order`](super::lock_order): `.lock()`/`.read()`/`.write()` on a
//! class-mapped binding, or anything wrapped in `lock_healthy(…)`) and
//! reports any *later statement* inside the same scope that calls a
//! banned name while the guard is live: names starting with `fit` or
//! containing `evaluate`/`characterize`, plus `write_all`, `write_fmt`
//! and `flush`.
//!
//! Guards consumed within one statement are exempt — that is guarded
//! data access, not a hold-across. Read-side I/O is deliberately not
//! banned: restore paths legitimately read a stream under the snapshot
//! gate. Waive with `// lint: allow(guard-across-fit) -- reason` on the
//! call line when holding the lock *is* the contract (e.g. the snapshot
//! gate serializing whole-bank writes).

use super::lock_order::{acquisitions_in, class_bindings};
use super::{Sink, SourceFile, Workspace};
use crate::lexer::TokenKind;
use std::collections::{BTreeSet, HashMap};

/// Whether `name` is a call a live guard must not span.
fn banned_callee(name: &str) -> bool {
    name == "fit"
        || name.starts_with("fit_")
        || name.contains("evaluate")
        || name.contains("characterize")
        || matches!(name, "write_all" | "write_fmt" | "flush")
}

/// A live let-bound guard during the body walk.
struct Held {
    name: String,
    line: usize,
    depth: i64,
    stmt: usize,
}

/// Runs the pass over every function in the workspace.
pub fn run(workspace: &Workspace, sink: &mut Sink<'_>) {
    let mut crates: BTreeSet<&str> = BTreeSet::new();
    for file in &workspace.files {
        crates.insert(&file.crate_name);
    }
    for crate_name in crates {
        let files: Vec<&SourceFile> = workspace.crate_files(crate_name);
        let bindings = class_bindings(&files);
        for file in &files {
            // The analysis crate implements the wrappers themselves; its
            // internals hold the raw locks by construction. (Path-scoped,
            // not crate-scoped: fixtures under crates/analysis/tests/
            // still get the pass.)
            if file.path.starts_with("crates/analysis/src") {
                continue;
            }
            for item in file.lexed.functions() {
                if item.is_test {
                    continue;
                }
                let Some(body) = item.body else { continue };
                check_body(file, &item.name, body, &bindings, sink);
            }
        }
    }
}

fn check_body(
    file: &SourceFile,
    fn_name: &str,
    body: (usize, usize),
    bindings: &HashMap<String, String>,
    sink: &mut Sink<'_>,
) {
    let lexed = &file.lexed;
    let acqs = acquisitions_in(file, body, bindings);
    if acqs.is_empty() {
        return;
    }
    let guard_at: HashMap<usize, (&String, usize)> = acqs
        .iter()
        .filter_map(|a| {
            a.guard_name
                .as_ref()
                .filter(|_| !a.temp)
                .map(|name| (a.method_ci, (name, a.line)))
        })
        .collect();
    if guard_at.is_empty() {
        return;
    }
    let mut live: Vec<Held> = Vec::new();
    let mut depth = 0i64;
    let mut stmt = 0usize;
    for ci in body.0..body.1 {
        let token = lexed.code_tok(ci);
        match token.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
            }
            ";" => stmt += 1,
            "drop" if lexed.seq(ci + 1, &["("]) && ci + 2 < lexed.code_len() => {
                let victim = lexed.code_tok(ci + 2).text.clone();
                live.retain(|g| g.name != victim);
            }
            _ => {}
        }
        if let Some((name, line)) = guard_at.get(&ci) {
            live.push(Held {
                name: (*name).clone(),
                line: *line,
                depth,
                stmt,
            });
            continue;
        }
        if token.kind == TokenKind::Ident
            && banned_callee(&token.text)
            && lexed.seq(ci + 1, &["("])
            && !(ci > 0 && lexed.code_tok(ci - 1).text == "fn")
        {
            if let Some(guard) = live.iter().find(|g| g.stmt < stmt) {
                sink.report(
                    file,
                    "guard-across-fit",
                    token.line,
                    format!(
                        "`{}` called in `{fn_name}` while guard `{}` (acquired at line {}) is \
                         still held; drop the lock before fit/characterize work or writer I/O, \
                         or waive with a written justification",
                        token.text, guard.name, guard.line
                    ),
                );
            }
        }
    }
}
