//! The static lock-order pass: rank inversions caught at lint time.
//!
//! The runtime's lockdep layer panics when a thread acquires two
//! [`Ordered*`](crate::lockdep) locks in descending rank order — but only
//! on interleavings a test actually executes. This pass finds the same
//! inversions statically: it parses the `LockClass` rank table out of
//! `lockdep.rs` (the scanned workspace copy when present, the compiled-in
//! copy otherwise), maps lock bindings to classes from their
//! `OrderedMutex::new(LockClass::X, …)` construction sites, and then
//! walks every function body tracking which guards are live at each
//! acquisition. Acquiring a lower-ranked class while a higher-ranked
//! guard is live reports a finding naming *both* acquisition sites —
//! parity with the lockdep runtime panic message.
//!
//! Liveness is scoped the way the borrow checker would see it: a
//! let-bound guard lives to the end of its block (or an explicit
//! `drop(guard)`); a guard consumed inside one statement (including
//! through `lock_healthy(…)`) dies at the statement's `;`. A line may
//! also pin its class explicitly with `// lint: lock-class(Name)` when
//! the binding is not constructed in the scanned crate.

use super::{Sink, SourceFile, Workspace};
use crate::lexer::{Lexed, TokenKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The compiled-in lockdep source, so rank parsing works in fixture mode
/// where the scanned file set does not include `lockdep.rs`.
const EMBEDDED_LOCKDEP: &str = include_str!("../lockdep.rs");

/// Parses `LockClass::Name => rank` arms from lexed source.
fn parse_ranks_into(lexed: &Lexed, ranks: &mut BTreeMap<String, u32>) {
    for ci in 0..lexed.code_len() {
        if !lexed.seq(ci, &["LockClass", "::"]) || ci + 4 >= lexed.code_len() {
            continue;
        }
        let name = lexed.code_tok(ci + 2);
        if name.kind != TokenKind::Ident || !lexed.seq(ci + 3, &["=>"]) {
            continue;
        }
        let value = lexed.code_tok(ci + 4);
        if value.kind == TokenKind::Number {
            if let Ok(rank) = value.text.replace('_', "").parse::<u32>() {
                ranks.entry(name.text.clone()).or_insert(rank);
            }
        }
    }
}

/// The rank table: the workspace's `lockdep.rs` (so edits there are seen
/// immediately) merged over the compiled-in copy, plus any arms declared
/// in fixtures.
pub(super) fn lock_ranks(workspace: &Workspace) -> BTreeMap<String, u32> {
    let mut ranks = BTreeMap::new();
    for file in &workspace.files {
        parse_ranks_into(&file.lexed, &mut ranks);
    }
    parse_ranks_into(&Lexed::new(EMBEDDED_LOCKDEP), &mut ranks);
    ranks
}

/// Maps binding names (`let slots = …`, `snapshot_gate: …` field inits)
/// to the `LockClass` they are constructed with. A name constructed with
/// two different classes is dropped as ambiguous.
pub(super) fn class_bindings(files: &[&SourceFile]) -> HashMap<String, String> {
    let mut map: HashMap<String, Option<String>> = HashMap::new();
    for file in files {
        let lexed = &file.lexed;
        for ci in 0..lexed.code_len() {
            let token = lexed.code_tok(ci);
            if !matches!(
                token.text.as_str(),
                "OrderedMutex" | "OrderedRwLock" | "OrderedCondvar"
            ) {
                continue;
            }
            if !lexed.seq(ci + 1, &["::", "new", "(", "LockClass", "::"])
                || ci + 6 >= lexed.code_len()
            {
                continue;
            }
            let class = lexed.code_tok(ci + 6).text.clone();
            let Some(name) = binding_name(lexed, ci) else {
                continue;
            };
            match map.get(&name) {
                Some(Some(existing)) if *existing != class => {
                    map.insert(name, None); // ambiguous
                }
                Some(_) => {}
                None => {
                    map.insert(name, Some(class));
                }
            }
        }
    }
    map.into_iter()
        .filter_map(|(name, class)| class.map(|c| (name, c)))
        .collect()
}

/// Walks back from a constructor site to the binding it initializes: the
/// nearest `let name` or struct-literal `name:` before a statement
/// boundary.
fn binding_name(lexed: &Lexed, ctor_ci: usize) -> Option<String> {
    let mut k = ctor_ci;
    for _ in 0..80 {
        if k == 0 {
            return None;
        }
        k -= 1;
        let token = lexed.code_tok(k);
        match token.text.as_str() {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut n = k + 1;
                if lexed.code_tok(n).text == "mut" {
                    n += 1;
                }
                let name = lexed.code_tok(n);
                return (name.kind == TokenKind::Ident).then(|| name.text.clone());
            }
            _ => {
                // A struct-literal field init `name:` (a path separator
                // lexes as a single `::` token, so a bare `:` is
                // unambiguous here).
                if token.kind == TokenKind::Ident
                    && k + 1 < lexed.code_len()
                    && lexed.code_tok(k + 1).text == ":"
                {
                    return Some(token.text.clone());
                }
            }
        }
    }
    None
}

/// One lock acquisition inside a function body.
pub(super) struct Acquisition {
    /// Code index of the `lock`/`read`/`write` method ident.
    pub method_ci: usize,
    /// Source line of the acquisition.
    pub line: usize,
    /// Resolved `LockClass` name, when known.
    pub class: Option<String>,
    /// The let binding holding the guard, when the guard outlives its
    /// statement.
    pub guard_name: Option<String>,
    /// Whether the guard dies at its own statement's `;`.
    pub temp: bool,
}

/// Finds the acquisitions in a code-token range. An acquisition is a
/// `.lock(` / `.read(` / `.write(` whose receiver resolves to a known
/// lock class (via `bindings` or a `// lint: lock-class(Name)` line
/// annotation), or any such call wrapped in `lock_healthy(…)`.
pub(super) fn acquisitions_in(
    file: &SourceFile,
    range: (usize, usize),
    bindings: &HashMap<String, String>,
) -> Vec<Acquisition> {
    let lexed = &file.lexed;
    let mut out = Vec::new();
    for ci in range.0..range.1 {
        let token = lexed.code_tok(ci);
        if !matches!(token.text.as_str(), "lock" | "read" | "write")
            || token.kind != TokenKind::Ident
            || ci == 0
            || lexed.code_tok(ci - 1).text != "."
            || !lexed.seq(ci + 1, &["("])
        {
            continue;
        }
        let stmt_start = statement_start(lexed, ci, range.0);
        let wrapped = (stmt_start..ci).any(|k| lexed.code_tok(k).text == "lock_healthy");
        let class = lexed
            .annotation_in(token.line..=token.line, "lock-class(")
            .and_then(|body| {
                let inner = body.strip_prefix("lock-class(")?;
                Some(inner[..inner.find(')')?].trim().to_string())
            })
            .or_else(|| receiver_of(lexed, ci - 1).and_then(|name| bindings.get(&name).cloned()));
        if class.is_none() && !wrapped {
            continue;
        }
        let (guard_name, temp) = guard_binding(lexed, ci, stmt_start, wrapped);
        out.push(Acquisition {
            method_ci: ci,
            line: token.line,
            class,
            guard_name,
            temp,
        });
    }
    out
}

/// The receiver ident of a method call: for `self.inner.snapshot_gate.`
/// at the final dot, `snapshot_gate`; walks back over one `[index]`.
fn receiver_of(lexed: &Lexed, dot_ci: usize) -> Option<String> {
    if dot_ci == 0 {
        return None;
    }
    let mut k = dot_ci - 1;
    if lexed.code_tok(k).text == "]" {
        let mut depth = 0usize;
        loop {
            match lexed.code_tok(k).text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    let token = lexed.code_tok(k);
    (token.kind == TokenKind::Ident).then(|| token.text.clone())
}

/// Code index just after the statement boundary (`;`, `{`, `}`) nearest
/// before `ci`, clamped to `floor`.
fn statement_start(lexed: &Lexed, ci: usize, floor: usize) -> usize {
    let mut k = ci;
    while k > floor {
        k -= 1;
        if matches!(lexed.code_tok(k).text.as_str(), ";" | "{" | "}") {
            return k + 1;
        }
    }
    floor
}

/// Classifies the guard produced by the acquisition at `method_ci`:
/// `(let binding name, temporary?)`. A guard whose full call expression
/// (including a `lock_healthy(…)` wrapper) is immediately chained into
/// another method is consumed within its statement.
fn guard_binding(
    lexed: &Lexed,
    method_ci: usize,
    stmt_start: usize,
    wrapped: bool,
) -> (Option<String>, bool) {
    let mut close = match_paren_forward(lexed, method_ci + 1);
    if wrapped {
        if let Some(lh) =
            (stmt_start..method_ci).find(|&k| lexed.code_tok(k).text == "lock_healthy")
        {
            if let Some(open) = (lh..method_ci).find(|&k| lexed.code_tok(k).text == "(") {
                close = match_paren_forward(lexed, open);
            }
        }
    }
    if close + 1 < lexed.code_len() && lexed.code_tok(close + 1).text == "." {
        return (None, true);
    }
    if lexed.code_tok(stmt_start).text == "let" {
        let mut n = stmt_start + 1;
        if lexed.code_tok(n).text == "mut" {
            n += 1;
        }
        let name = lexed.code_tok(n);
        if name.kind == TokenKind::Ident {
            return (Some(name.text.clone()), false);
        }
    }
    (None, true)
}

/// Code index of the `)` matching the `(` at `open`.
fn match_paren_forward(lexed: &Lexed, open: usize) -> usize {
    let mut depth = 0usize;
    for ci in open..lexed.code_len() {
        match lexed.code_tok(ci).text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return ci;
                }
            }
            _ => {}
        }
    }
    lexed.code_len().saturating_sub(1)
}

/// A guard being tracked through a body walk.
struct LiveGuard {
    class: String,
    rank: u32,
    line: usize,
    name: Option<String>,
    depth: i64,
    stmt: usize,
    temp: bool,
}

/// Runs the lock-order pass over every crate in the workspace.
pub fn run(workspace: &Workspace, sink: &mut Sink<'_>) {
    let ranks = lock_ranks(workspace);
    let mut crates: BTreeSet<&str> = BTreeSet::new();
    for file in &workspace.files {
        crates.insert(&file.crate_name);
    }
    for crate_name in crates {
        let files: Vec<&SourceFile> = workspace.crate_files(crate_name);
        let bindings = class_bindings(&files);
        for file in &files {
            for item in file.lexed.functions() {
                if item.is_test {
                    continue;
                }
                let Some(body) = item.body else { continue };
                check_body(file, item.name.as_str(), body, &bindings, &ranks, sink);
            }
        }
    }
}

fn check_body(
    file: &SourceFile,
    fn_name: &str,
    body: (usize, usize),
    bindings: &HashMap<String, String>,
    ranks: &BTreeMap<String, u32>,
    sink: &mut Sink<'_>,
) {
    let lexed = &file.lexed;
    let acqs = acquisitions_in(file, body, bindings);
    if acqs.len() < 2 {
        return;
    }
    let by_ci: HashMap<usize, &Acquisition> = acqs.iter().map(|a| (a.method_ci, a)).collect();
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth = 0i64;
    let mut stmt = 0usize;
    let mut ci = body.0;
    while ci < body.1 {
        match lexed.code_tok(ci).text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
            }
            ";" => {
                live.retain(|g| !(g.temp && g.stmt == stmt));
                stmt += 1;
            }
            "drop" if lexed.seq(ci + 1, &["("]) && ci + 2 < lexed.code_len() => {
                let victim = lexed.code_tok(ci + 2).text.clone();
                live.retain(|g| g.name.as_deref() != Some(victim.as_str()));
            }
            _ => {}
        }
        if let Some(acq) = by_ci.get(&ci) {
            if let Some(class) = &acq.class {
                if let Some(&rank) = ranks.get(class) {
                    for held in live.iter().filter(|g| g.rank > rank) {
                        sink.report(
                            file,
                            "lock-order",
                            acq.line,
                            format!(
                                "lock-order inversion in `{fn_name}`: `{class}` (rank {rank}) \
                                 acquired at line {} while `{}` (rank {}) acquired at line {} \
                                 is still held; classes must be locked in ascending rank order",
                                acq.line, held.class, held.rank, held.line
                            ),
                        );
                    }
                    live.push(LiveGuard {
                        class: class.clone(),
                        rank,
                        line: acq.line,
                        name: acq.guard_name.clone(),
                        depth,
                        stmt,
                        temp: acq.temp,
                    });
                }
            }
        }
        ci += 1;
    }
}
