//! The ported line rules on the token engine: unwrap, forbid-unsafe,
//! atomic-ordering justification, no-sleep, raw-mutex, frame-ingest and
//! snapshot-io.
//!
//! These are the rules the old line-regex scanner carried, re-expressed
//! as token-sequence matches. Working on tokens removes the old scanner's
//! blind spots for free: a pattern inside a string literal or a comment
//! is a [`Str`](crate::lexer::TokenKind::Str)/comment token and can never
//! match an identifier sequence, so the pass can scan its own source
//! without `concat!` tricks, and `#[cfg(test)]` regions come from real
//! attribute parsing instead of brace counting.

use super::{Sink, SourceFile};
use crate::lexer::TokenKind;
use crate::lint::FileKind;

/// Marker a fixture uses to opt into the crate-root rule (written as a
/// comment: `// lint-scope: crate-root`).
const CRATE_ROOT_MARK: &str = "lint-scope: crate-root";

/// Runs every style rule over one file.
pub fn run(file: &SourceFile, sink: &mut Sink<'_>) {
    let lexed = &file.lexed;
    let fixture = file.kind == FileKind::Fixture;
    let crate_root = file.kind == FileKind::CrateRoot
        || (fixture
            && lexed
                .all_tokens()
                .iter()
                .any(|t| t.kind == TokenKind::LineComment && t.text.contains(CRATE_ROOT_MARK)));
    let runtime_scope = fixture || file.path.starts_with("crates/runtime/src");
    let raw_mutex_scope = !file.path.starts_with("crates/analysis");

    if crate_root {
        let sealed = (0..lexed.code_len())
            .any(|ci| lexed.seq(ci, &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]));
        if !sealed {
            sink.report(
                file,
                "forbid-unsafe",
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }

    for ci in 0..lexed.code_len() {
        let token = lexed.code_tok(ci);
        if token.kind != TokenKind::Ident {
            continue;
        }
        let line = token.line;

        // raw-mutex applies even in test regions: tests synchronize
        // through the ordered wrappers too, so lockdep sees their edges.
        if raw_mutex_scope && matches!(token.text.as_str(), "Mutex" | "MutexGuard" | "Condvar") {
            let wrapper = if token.text == "Condvar" {
                "Condvar"
            } else {
                "Mutex"
            };
            sink.report(
                file,
                "raw-mutex",
                line,
                format!(
                    "raw `std::sync::{}` outside crates/analysis; use the Ordered{wrapper} \
                     wrapper so the lock carries a rank",
                    token.text
                ),
            );
        }

        if lexed.in_test(ci) {
            continue;
        }

        if runtime_scope && (token.text == "unwrap" || token.text == "expect") {
            let is_method =
                ci >= 1 && lexed.code_tok(ci - 1).text == "." && lexed.seq(ci + 1, &["("]);
            if is_method {
                sink.report(
                    file,
                    "no-unwrap",
                    line,
                    format!(
                        "`.{}(...)` in runtime library code; recover poisoned locks via \
                         `lock_healthy` or surface a RuntimeError",
                        token.text
                    ),
                );
            }
        }

        if token.text == "Ordering" && lexed.seq(ci + 1, &["::"]) {
            let target = lexed.code_tok(ci + 2);
            if matches!(target.text.as_str(), "Relaxed" | "SeqCst")
                && !lexed.line_comment_contains(target.line, "ordering:")
            {
                sink.report(
                    file,
                    "atomic-ordering",
                    line,
                    format!(
                        "`Ordering::{}` without a trailing `// ordering:` justification comment",
                        target.text
                    ),
                );
            }
        }

        if token.text == "thread" && lexed.seq(ci + 1, &["::", "sleep"]) {
            sink.report(
                file,
                "no-sleep",
                line,
                "`thread::sleep` in library code; blocking the pool hides backpressure".to_string(),
            );
        }

        // The fused-ingest and snapshot-io rules share the runtime scope:
        // serve-path library code under crates/runtime/src, plus fixtures.
        if runtime_scope {
            if matches!(token.text.as_str(), "Histogram" | "HistogramSignature")
                && lexed.seq(ci + 1, &["::", "of", "("])
            {
                sink.report(
                    file,
                    "frame-ingest",
                    line,
                    format!(
                        "direct `{}::of(...)` pixel pass in runtime library code; the serve \
                         path computes histogram, signature and content hash in one fused \
                         `FrameIngest` pass",
                        token.text
                    ),
                );
            }
            if token.text == "std" && lexed.seq(ci + 1, &["::", "fs"]) {
                sink.report(file, "snapshot-io", line, snapshot_io_message("std::fs"));
            }
            if token.text == "File" && lexed.seq(ci + 1, &["::"]) {
                let ctor = lexed.code_tok(ci + 2);
                if matches!(ctor.text.as_str(), "open" | "create") && lexed.seq(ci + 3, &["("]) {
                    sink.report(
                        file,
                        "snapshot-io",
                        line,
                        snapshot_io_message(&format!("File::{}(", ctor.text)),
                    );
                }
            }
        }
    }
}

fn snapshot_io_message(pattern: &str) -> String {
    format!(
        "`{pattern}...` in runtime library code; snapshot save/restore takes caller-supplied \
         Read/Write streams so path handling and fsync policy stay with the caller and I/O \
         failures surface as typed SnapshotError::Io values"
    )
}
