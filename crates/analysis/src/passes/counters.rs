//! The counter-reconciliation pass: runtime stats counters must be
//! written somewhere and surface in a snapshot.
//!
//! A monitoring counter that nothing increments, or that the stats
//! snapshot forgets to copy, rots silently — dashboards read zero
//! forever and nobody notices. For every `AtomicU64` field of a runtime
//! stats struct (a struct whose name contains `Stats`, `Counters` or
//! `Collector`, or one annotated `// lint: counter-struct`), this pass
//! requires, in non-test code of the same crate:
//!
//! * at least one **write site** — `field.fetch_add(…)` / `store(…)` /
//!   another mutating atomic op;
//! * at least one **read site** — `field.load(…)` / `swap(…)`;
//! * when the declaring file has a `snapshot` or `merge` function, the
//!   field must appear inside one of those bodies, so new counters can't
//!   be dropped from `EngineStats` snapshots.
//!
//! The pass is scoped to `crates/runtime/src` (and fixtures): that is
//! where the serving stats live; other crates' atomics are working state
//! with their own invariants, already covered by the `atomic-ordering`
//! justification rule.

use super::{Sink, SourceFile, Workspace};
use crate::lexer::TokenKind;
use crate::lint::FileKind;
use std::collections::BTreeSet;

const WRITE_OPS: [&str; 9] = [
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "store",
    "compare_exchange",
];
const READ_OPS: [&str; 2] = ["load", "swap"];

/// Runs the pass over every stats struct in scope.
pub fn run(workspace: &Workspace, sink: &mut Sink<'_>) {
    let mut crates: BTreeSet<&str> = BTreeSet::new();
    for file in &workspace.files {
        crates.insert(&file.crate_name);
    }
    for crate_name in crates {
        let files: Vec<&SourceFile> = workspace.crate_files(crate_name);
        for (fi, file) in files.iter().enumerate() {
            let in_scope =
                file.kind == FileKind::Fixture || file.path.starts_with("crates/runtime/src");
            if !in_scope {
                continue;
            }
            for item in file.lexed.structs() {
                if item.is_test || !is_stats_struct(file, item) {
                    continue;
                }
                check_struct(&files, fi, item, sink);
            }
        }
    }
}

fn is_stats_struct(file: &SourceFile, item: &crate::lexer::StructItem) -> bool {
    let by_name = ["Stats", "Counters", "Collector"]
        .iter()
        .any(|mark| item.name.contains(mark));
    by_name
        || file
            .lexed
            .annotation_in(item.item_line..=item.sig_line, "counter-struct")
            .is_some()
}

fn check_struct(
    files: &[&SourceFile],
    declaring: usize,
    item: &crate::lexer::StructItem,
    sink: &mut Sink<'_>,
) {
    let file = files[declaring];
    // Bodies of `snapshot`/`merge` functions in the declaring file, used
    // for the reconciliation sub-check.
    let reconcile_bodies: Vec<(usize, usize)> = file
        .lexed
        .functions()
        .iter()
        .filter(|f| !f.is_test && matches!(f.name.as_str(), "snapshot" | "merge"))
        .filter_map(|f| f.body)
        .collect();

    for (field, ty, line) in &item.fields {
        if !ty.split(' ').any(|t| t == "AtomicU64") {
            continue;
        }
        let mut wrote = false;
        let mut read = false;
        for other in files {
            let lexed = &other.lexed;
            for ci in 0..lexed.code_len() {
                let token = lexed.code_tok(ci);
                if token.kind != TokenKind::Ident
                    || token.text != *field
                    || lexed.in_test(ci)
                    || !lexed.seq(ci + 1, &["."])
                    || ci + 2 >= lexed.code_len()
                {
                    continue;
                }
                let op = lexed.code_tok(ci + 2).text.as_str();
                if !lexed.seq(ci + 3, &["("]) {
                    continue;
                }
                wrote |= WRITE_OPS.contains(&op);
                read |= READ_OPS.contains(&op);
            }
        }
        if !wrote {
            sink.report(
                file,
                "counter-reconciliation",
                *line,
                format!(
                    "counter `{}.{field}` has no increment/store site in crate `{}`; either \
                     wire it up or delete the dead field",
                    item.name, file.crate_name
                ),
            );
        }
        if !read {
            sink.report(
                file,
                "counter-reconciliation",
                *line,
                format!(
                    "counter `{}.{field}` is never loaded in crate `{}`; a counter no \
                     snapshot reads can rot silently",
                    item.name, file.crate_name
                ),
            );
        }
        if !reconcile_bodies.is_empty() {
            let lexed = &file.lexed;
            let in_snapshot = reconcile_bodies
                .iter()
                .any(|&(start, end)| (start..end).any(|ci| lexed.code_tok(ci).text == *field));
            if !in_snapshot {
                sink.report(
                    file,
                    "counter-reconciliation",
                    *line,
                    format!(
                        "counter `{}.{field}` does not appear in this file's \
                         `snapshot`/`merge` body; stats snapshots would silently miss it",
                        item.name
                    ),
                );
            }
        }
    }
}
