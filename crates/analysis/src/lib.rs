//! Concurrency correctness tooling for the HEBS serving runtime.
//!
//! The runtime is built entirely on hand-rolled `std::sync` primitives —
//! sharded mutexes, a condvar-based single-flight table, and ~70 atomics —
//! and the paper's bounded-distortion contract is only as good as the
//! absence of deadlocks and torn counters under load. With no registry
//! access (no `loom`, no sanitizer crates), this crate supplies a std-only
//! analysis layer with three legs:
//!
//! * [`lockdep`] — [`OrderedMutex`]/[`OrderedRwLock`]/[`OrderedCondvar`]
//!   wrappers that carry a declared [`LockClass`] rank. Under
//!   `debug_assertions` (or the `lockdep` cargo feature) every acquisition
//!   is checked against the thread's held-lock set and a global lock-order
//!   graph; rank inversions, reentrant acquisitions and order cycles panic
//!   naming both acquisition sites. In release builds the wrappers are
//!   plain `std::sync` types with zero overhead.
//! * [`interleave`] — seeded yield-injection points
//!   ([`interleave::point`]) compiled into the runtime's race-prone seams
//!   (single-flight wait/notify, cache insert-evict, generation-swap CAS,
//!   tenant admission). A seeded schedule perturbs thread interleavings
//!   deterministically enough to re-run invariant tests under many
//!   distinct schedules; in release builds the points are empty inline
//!   functions.
//! * [`lint`] — the token-level analyzer behind the `lint` binary
//!   (`cargo run -p hebs-analysis --bin lint`). A std-only Rust lexer
//!   ([`lexer`]) feeds a pass pipeline ([`passes`]): the style rules (no
//!   `.unwrap()`/`.expect(` in runtime library code, `#![forbid(unsafe_code)]`
//!   in every crate root, justified `Relaxed`/`SeqCst` atomics, no
//!   `thread::sleep` in library code, no raw `std::sync` primitives
//!   outside this crate, fused frame ingest, stream-only snapshot I/O)
//!   plus semantic passes that statically pin the serve-path contracts:
//!   zero allocation in hot functions, ascending lock-rank acquisition,
//!   no guard held across fit/writer work, counter reconciliation, and
//!   interleaving yield-point coverage.

#![forbid(unsafe_code)]

pub mod interleave;
pub mod lexer;
pub mod lint;
pub mod lockdep;
pub mod passes;

pub use lockdep::{
    lock_healthy, LockClass, OrderedCondvar, OrderedMutex, OrderedMutexGuard, OrderedRwLock,
};
