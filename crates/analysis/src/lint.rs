//! The serve-path lint: token-level source analysis for the workspace.
//!
//! Clippy cannot see project policy — that poisoned-lock recovery must go
//! through [`lock_healthy`](crate::lock_healthy), that the serve path
//! must not allocate, that lock classes must be acquired in rank order.
//! This module is the front door to the analyzer: it collects the
//! workspace's sources, lexes them with the std-only engine in
//! [`lexer`](crate::lexer), and runs the pass set in
//! [`passes`] over the token streams.
//!
//! Style rules (ported from the original line scanner, now matched on
//! tokens so strings and comments can never confuse them):
//!
//! * `no-unwrap` — no `.unwrap()` / `.expect(` in runtime library code.
//! * `forbid-unsafe` — every crate root carries `#![forbid(unsafe_code)]`.
//! * `atomic-ordering` — `Ordering::Relaxed`/`SeqCst` need a trailing
//!   `// ordering:` justification.
//! * `no-sleep` — no `thread::sleep` in library code.
//! * `raw-mutex` — no raw `std::sync` primitives outside `crates/analysis`.
//! * `frame-ingest` — runtime code traverses frame pixels only through
//!   the fused `FrameIngest` pass.
//! * `snapshot-io` — runtime code does no filesystem I/O; snapshots use
//!   caller-supplied streams.
//!
//! Semantic passes (see the [`passes`] submodules for the
//! full contracts):
//!
//! * `hot-path-alloc` — functions reachable from `// lint: hot-path`
//!   roots must not allocate.
//! * `lock-order` — no function acquires two `Ordered*` locks in
//!   descending `LockClass` rank order.
//! * `guard-across-fit` — no lock guard held across fit/characterize
//!   work or writer I/O.
//! * `counter-reconciliation` — runtime stats counters are incremented
//!   somewhere and appear in the stats snapshot.
//! * `yield-coverage` — `interleave::point` names and the
//!   `tests/interleaving.rs` manifest match exactly.
//! * `unused-waiver` — a waiver that suppresses nothing is itself flagged.
//!
//! Waivers: `// lint: allow(rule) -- reason` on the offending line, or in
//! the file header (before the first code token) to cover the whole file.
//! Waivers for the semantic passes take effect only with a nonempty
//! reason.

use crate::passes::{self, SourceFile, Workspace};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (e.g. `no-unwrap`, `hot-path-alloc`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number (line 1 for whole-file findings).
    pub line: usize,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rule set a file gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A crate root (`src/lib.rs`): library rules plus `forbid-unsafe`.
    CrateRoot,
    /// Ordinary library source.
    Library,
    /// A lint self-test fixture: treated as runtime library code so every
    /// rule can fire; the crate-root rule applies only when the fixture
    /// carries the [`CRATE_ROOT_MARKER`] comment.
    Fixture,
}

/// Marker comment a fixture uses to opt into the crate-root rule.
pub const CRATE_ROOT_MARKER: &str = "// lint-scope: crate-root";

/// Scans one file's contents. `path` is the workspace-relative path used
/// for rule scoping and reporting. Cross-file passes see a one-file
/// workspace: the call-name closure, lock bindings and counter site
/// searches all resolve within `contents`.
pub fn scan_source(path: &str, kind: FileKind, contents: &str) -> Vec<Finding> {
    let workspace = Workspace::single(SourceFile::new(path, kind, contents));
    passes::run_all(&workspace)
}

/// Scans a fixture file from disk with every rule armed.
pub fn scan_fixture(path: &Path) -> io::Result<Vec<Finding>> {
    let contents = fs::read_to_string(path)?;
    Ok(scan_source(
        &path.display().to_string(),
        FileKind::Fixture,
        &contents,
    ))
}

/// Scans the workspace rooted at `root`: every `.rs` file under
/// `crates/*/src` and the facade's `src/`, plus the interleaving replay
/// manifest (`tests/interleaving.rs`) for the yield-coverage pass.
/// Returns `(files scanned, findings)`.
pub fn scan_workspace(root: &Path) -> io::Result<(usize, Vec<Finding>)> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;

    let mut sources = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let kind = if rel.ends_with("src/lib.rs") {
            FileKind::CrateRoot
        } else {
            FileKind::Library
        };
        let contents = fs::read_to_string(file)?;
        sources.push(SourceFile::new(&rel, kind, &contents));
    }

    let manifest_path = root.join("tests").join("interleaving.rs");
    let manifest = match fs::read_to_string(&manifest_path) {
        Ok(contents) => Some(SourceFile::new(
            "tests/interleaving.rs",
            FileKind::Library,
            &contents,
        )),
        Err(_) => None,
    };

    let workspace = Workspace {
        files: sources,
        manifest,
    };
    Ok((files.len(), passes::run_all(&workspace)))
}

/// Renders findings as the machine-readable report the CI `analysis` job
/// uploads: `{"files_scanned": N, "findings": [{rule, path, line,
/// message}, …]}`. Hand-rolled (std-only workspace), with full string
/// escaping.
pub fn findings_json(files_scanned: usize, findings: &[Finding]) -> String {
    let mut out = String::with_capacity(256 + findings.len() * 128);
    out.push_str("{\n  \"files_scanned\": ");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, finding) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": ");
        push_json_str(&mut out, finding.rule);
        out.push_str(", \"path\": ");
        push_json_str(&mut out, &finding.path);
        out.push_str(", \"line\": ");
        out.push_str(&finding.line.to_string());
        out.push_str(", \"message\": ");
        push_json_str(&mut out, &finding.message);
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_and_expect_flag_in_runtime_library_code() {
        let source = "fn serve() {\n    let g = lock.lock().unwrap();\n    let h = other.lock().expect(\"x\");\n}\n";
        let findings = scan_source("crates/runtime/src/engine.rs", FileKind::Library, source);
        assert_eq!(rules(&findings), vec!["no-unwrap", "no-unwrap"]);
        assert_eq!(findings[0].line, 2);
        // The same text outside the runtime crate is not in scope.
        assert!(scan_source("crates/core/src/policy.rs", FileKind::Library, source).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_library_rules() {
        let source = "fn serve() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x.lock().unwrap();\n        std::thread::sleep(d);\n        c.load(Ordering::SeqCst);\n    }\n}\n";
        let findings = scan_source("crates/runtime/src/engine.rs", FileKind::Library, source);
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn patterns_inside_strings_and_comments_never_match() {
        // The old line scanner needed concat! tricks to scan its own rule
        // table; the token engine classifies these as Str/comment tokens.
        let source = "fn f() {\n    let msg = \"never call .unwrap() or thread::sleep here\";\n    // a comment mentioning x.lock().unwrap() and Ordering::Relaxed\n}\n";
        let findings = scan_source("crates/runtime/src/engine.rs", FileKind::Library, source);
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn unjustified_relaxed_flags_and_justified_passes() {
        let bad = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let good =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); } // ordering: monotonic counter\n";
        assert_eq!(
            rules(&scan_source("crates/core/src/a.rs", FileKind::Library, bad)),
            vec!["atomic-ordering"]
        );
        assert!(scan_source("crates/core/src/a.rs", FileKind::Library, good).is_empty());
    }

    #[test]
    fn raw_sync_primitives_flag_but_ordered_wrappers_pass() {
        let raw = "use std::sync::{Mutex, Condvar};\n";
        let findings = scan_source("crates/runtime/src/cache.rs", FileKind::Library, raw);
        assert_eq!(rules(&findings), vec!["raw-mutex", "raw-mutex"]);
        let wrapped = "use hebs_analysis::{OrderedMutex, OrderedCondvar, OrderedMutexGuard};\n";
        assert!(scan_source("crates/runtime/src/cache.rs", FileKind::Library, wrapped).is_empty());
        // crates/analysis itself wraps the raw primitives.
        assert!(scan_source("crates/analysis/src/lockdep.rs", FileKind::Library, raw).is_empty());
    }

    #[test]
    fn sleep_flags_in_library_code_but_a_header_waiver_covers_a_file() {
        let source = "fn pace() { std::thread::sleep(d); }\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/serving.rs",
                FileKind::Library,
                source
            )),
            vec!["no-sleep"]
        );
        // The bench load generator carries a file-header waiver instead of
        // the old compiled-in allowlist.
        let waived = "//! Pacing docs.\n// lint: allow(no-sleep) -- paces scheduled arrivals\nfn pace() { std::thread::sleep(d); }\nfn pace2() { std::thread::sleep(d); }\n";
        assert!(
            scan_source("crates/bench/src/loadgen.rs", FileKind::Library, waived).is_empty(),
            "a header waiver covers every line of the file"
        );
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let bare = "pub mod engine;\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/lib.rs",
                FileKind::CrateRoot,
                bare
            )),
            vec!["forbid-unsafe"]
        );
        let sealed = "#![forbid(unsafe_code)]\npub mod engine;\n";
        assert!(scan_source("crates/runtime/src/lib.rs", FileKind::CrateRoot, sealed).is_empty());
    }

    #[test]
    fn inline_waiver_suppresses_a_single_rule() {
        let source =
            "fn f() { x.lock().unwrap(); } // lint: allow(no-unwrap) invariant: set above\n";
        assert!(scan_source("crates/runtime/src/engine.rs", FileKind::Library, source).is_empty());
        // The waiver names one rule; others still fire — and the unused
        // waiver is now itself a finding.
        let sleepy = "fn f() { std::thread::sleep(d); } // lint: allow(no-unwrap)\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/engine.rs",
                FileKind::Library,
                sleepy
            )),
            vec!["no-sleep", "unused-waiver"]
        );
    }

    #[test]
    fn unused_waivers_are_findings_and_semantic_waivers_need_reasons() {
        let stale = "fn f() {} // lint: allow(no-unwrap) nothing here\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/engine.rs",
                FileKind::Library,
                stale
            )),
            vec!["unused-waiver"]
        );
        // A bare waiver for a semantic pass does not suppress: the
        // finding stands and the waiver is reported stale.
        let bare = "// lint: hot-path\nfn serve() { let v = Vec::new(); } // lint: allow(hot-path-alloc)\n";
        let findings = scan_source("crates/runtime/src/engine.rs", FileKind::Library, bare);
        assert_eq!(rules(&findings), vec!["hot-path-alloc", "unused-waiver"]);
        let justified = "// lint: hot-path\nfn serve() { let v = Vec::new(); } // lint: allow(hot-path-alloc) -- bounded one-shot setup\n";
        assert!(
            scan_source("crates/runtime/src/engine.rs", FileKind::Library, justified).is_empty()
        );
    }

    #[test]
    fn direct_histogram_passes_flag_in_runtime_library_code() {
        let source = "fn serve(frame: &GrayImage) {\n    let h = Histogram::of(frame);\n    let s = HistogramSignature::of(frame);\n}\n";
        let findings = scan_source("crates/runtime/src/engine.rs", FileKind::Library, source);
        assert_eq!(rules(&findings), vec!["frame-ingest", "frame-ingest"]);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
        // The signature call is reported once, not once per pattern.
        let sig_only = "fn key(frame: &GrayImage) { HistogramSignature::of(frame); }\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/cache.rs",
                FileKind::Library,
                sig_only
            )),
            vec!["frame-ingest"]
        );
        // Outside the runtime crate the fused-ingest contract does not
        // apply: hebs-core's pipeline legitimately builds histograms.
        assert!(scan_source("crates/core/src/pipeline.rs", FileKind::Library, source).is_empty());
        // A waived line (e.g. a build-time capability probe) passes.
        let waived = "fn probe() { Histogram::of(&img); } // lint: allow(frame-ingest) 4x4 probe\n";
        assert!(scan_source("crates/runtime/src/engine.rs", FileKind::Library, waived).is_empty());
        // Test modules keep building histograms directly.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn h() { Histogram::of(&img); }\n}\n";
        assert!(
            scan_source("crates/runtime/src/engine.rs", FileKind::Library, test_only).is_empty()
        );
    }

    #[test]
    fn filesystem_access_flags_in_runtime_library_code() {
        let source = "fn save(path: &Path) {\n    let f = std::fs::File::create(path);\n}\n";
        let findings = scan_source("crates/runtime/src/snapshot.rs", FileKind::Library, source);
        // One line trips both the module path and the constructor pattern.
        assert_eq!(rules(&findings), vec!["snapshot-io", "snapshot-io"]);
        assert_eq!(findings[0].line, 2);
        // A bare File::open without the fs path still flags.
        let opened = "fn load() { let f = File::open(\"bank.snap\"); }\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/engine.rs",
                FileKind::Library,
                opened
            )),
            vec!["snapshot-io"]
        );
        // Outside the runtime crate (e.g. the bench harness writing JSON
        // reports, this lint pass itself) filesystem access is fine.
        assert!(scan_source("crates/bench/src/json.rs", FileKind::Library, source).is_empty());
        assert!(scan_source("crates/analysis/src/lint.rs", FileKind::Library, source).is_empty());
        // Stream-generic snapshot plumbing passes.
        let streamed = "fn save<W: Write>(w: &mut W) -> Result<(), SnapshotError> { Ok(()) }\n";
        assert!(scan_source(
            "crates/runtime/src/snapshot.rs",
            FileKind::Library,
            streamed
        )
        .is_empty());
        // Test modules may touch temp files directly.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::remove_file(p); }\n}\n";
        assert!(
            scan_source("crates/runtime/src/engine.rs", FileKind::Library, test_only).is_empty()
        );
    }

    #[test]
    fn fixture_mode_arms_every_rule() {
        let source = "fn f() { x.lock().unwrap(); }\n";
        assert_eq!(
            rules(&scan_source("anything.rs", FileKind::Fixture, source)),
            vec!["no-unwrap"]
        );
        let marked = format!("{CRATE_ROOT_MARKER}\npub fn f() {{}}\n");
        assert_eq!(
            rules(&scan_source("anything.rs", FileKind::Fixture, &marked)),
            vec!["forbid-unsafe"]
        );
    }

    #[test]
    fn json_output_is_escaped_and_structured() {
        let findings = vec![Finding {
            rule: "no-unwrap",
            path: "crates/runtime/src/engine.rs".to_string(),
            line: 7,
            message: "a \"quoted\" message\nwith a newline".to_string(),
        }];
        let json = findings_json(3, &findings);
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"rule\": \"no-unwrap\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
        assert!(!json.contains("\n  \"findings\": []"), "non-empty list");
        let empty = findings_json(0, &[]);
        assert!(empty.contains("\"findings\": []"));
    }
}
