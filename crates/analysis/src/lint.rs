//! The serve-path lint pass: source-scanning rules for the workspace.
//!
//! Clippy cannot see project policy — that poisoned-lock recovery must go
//! through [`lock_healthy`](crate::lock_healthy), that every `Relaxed`
//! atomic must state *why* relaxed is enough, that raw `std::sync::Mutex`
//! is banned outside this crate now that the runtime carries lock ranks.
//! These rules are plain text scans (std-only, no syn/proc-macro) over
//! non-test library code, with two escape hatches: a compiled-in per-rule
//! path [`ALLOWLIST`] and an inline `// lint: allow(<rule>)` waiver on
//! the offending line.
//!
//! Rules:
//!
//! * `no-unwrap` — no `.unwrap()` / `.expect(` in runtime library code
//!   (`crates/runtime/src`). Lock recovery goes through `lock_healthy`;
//!   everything else returns `RuntimeError`.
//! * `forbid-unsafe` — every crate root must carry
//!   `#![forbid(unsafe_code)]`.
//! * `atomic-ordering` — a line using `Ordering::Relaxed` or
//!   `Ordering::SeqCst` must carry a trailing `// ordering:` comment
//!   justifying the choice.
//! * `no-sleep` — no `thread::sleep` in library code (benches excepted
//!   via the allowlist: an open-loop load generator paces by sleeping).
//! * `raw-mutex` — no raw `std::sync::Mutex`/`MutexGuard`/`Condvar`
//!   outside `crates/analysis`; the runtime uses the ordered wrappers.
//! * `frame-ingest` — no direct `Histogram::of` / `HistogramSignature::of`
//!   in runtime library code (`crates/runtime/src`): a serve traverses its
//!   frame's pixels exactly once, through the fused `FrameIngest` pass,
//!   which also yields the signature and the exact-cache content hash.
//! * `snapshot-io` — no `std::fs` / `File::open` / `File::create` in
//!   runtime library code: the runtime serves from memory, and snapshot
//!   save/restore is written against caller-supplied `Read`/`Write`
//!   streams so file handling (paths, tempfile-and-rename, fsync policy)
//!   stays with the caller and every I/O failure surfaces as a typed
//!   `SnapshotError::Io`, never an in-library unwrap.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// Patterns are assembled with `concat!` so this file's own scan of the
// workspace never matches the rule definitions themselves.
const PAT_UNWRAP: &str = concat!(".", "unwrap()");
const PAT_EXPECT: &str = concat!(".", "expect(");
const PAT_RELAXED: &str = concat!("Ordering::", "Relaxed");
const PAT_SEQCST: &str = concat!("Ordering::", "SeqCst");
const PAT_ORDERING_COMMENT: &str = concat!("// ordering", ":");
const PAT_SLEEP: &str = concat!("thread::", "sleep");
const PAT_FORBID_UNSAFE: &str = concat!("#![forbid(", "unsafe_code)]");
const PAT_CFG_TEST: &str = concat!("#[cfg(", "test)]");
const PAT_CFG_ALL_TEST: &str = concat!("#[cfg(all(", "test");
const RAW_SYNC_TOKENS: [&str; 3] = ["Mutex", "MutexGuard", "Condvar"];
const INGEST_PATTERNS: [&str; 2] = [
    concat!("Histogram::", "of("),
    concat!("HistogramSignature::", "of("),
];
const SNAPSHOT_IO_PATTERNS: [&str; 3] = [
    concat!("std::", "fs"),
    concat!("File::", "open("),
    concat!("File::", "create("),
];
/// Marker a fixture uses to opt into the crate-root rule.
pub const CRATE_ROOT_MARKER: &str = concat!("// lint-scope", ": crate-root");

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    /// 1-based line number (line 1 for whole-file findings).
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A compiled-in waiver: `rule` is not applied to paths containing
/// `path_contains`. Every entry carries its justification.
pub struct Allow {
    pub rule: &'static str,
    pub path_contains: &'static str,
    pub reason: &'static str,
}

/// The per-rule path allowlist.
pub const ALLOWLIST: &[Allow] = &[Allow {
    rule: "no-sleep",
    path_contains: "crates/bench/",
    reason:
        "the open-loop load generator paces scheduled arrivals by sleeping until each send time",
}];

fn allowed(rule: &str, path: &str) -> bool {
    ALLOWLIST
        .iter()
        .any(|a| a.rule == rule && path.contains(a.path_contains))
}

/// Which rule set a file gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A crate root (`src/lib.rs`): library rules plus `forbid-unsafe`.
    CrateRoot,
    /// Ordinary library source.
    Library,
    /// A lint self-test fixture: treated as runtime library code so every
    /// rule can fire; the crate-root rule applies only when the fixture
    /// carries the [`CRATE_ROOT_MARKER`].
    Fixture,
}

/// Strips a trailing `//` line comment, returning `(code, full_line)`.
/// Heuristic: the first `//` outside obvious char/string context starts
/// the comment; good enough for this workspace's style.
fn code_portion(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Does `code` contain `token` as a standalone identifier?
fn has_token(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = code[..at]
            .chars()
            .next_back()
            .map_or(true, |c| !is_ident_char(c));
        let after_ok = code[at + token.len()..]
            .chars()
            .next()
            .map_or(true, |c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

/// Marks each line that belongs to `#[cfg(test)]`-gated code: the
/// attribute itself, any stacked attributes, and the braced item (or the
/// single `;`-terminated item) it gates.
fn test_region_map(lines: &[&str]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i32 = 0;
    let mut pending = false;
    for (i, line) in lines.iter().enumerate() {
        let code = code_portion(line);
        if depth > 0 {
            in_test[i] = true;
            depth += braces_delta(code);
            if depth <= 0 {
                depth = 0;
            }
            continue;
        }
        if pending {
            in_test[i] = true;
            let delta = braces_delta(code);
            if delta > 0 {
                depth = delta;
                pending = false;
            } else if code.contains(';') {
                // A gated single-line item (e.g. a `use` declaration).
                pending = false;
            }
            continue;
        }
        if code.contains(PAT_CFG_TEST) || code.contains(PAT_CFG_ALL_TEST) {
            in_test[i] = true;
            pending = true;
            // The item may open on the same line as the attribute.
            let delta = braces_delta(code);
            if delta > 0 {
                depth = delta;
                pending = false;
            }
        }
    }
    in_test
}

fn braces_delta(code: &str) -> i32 {
    let mut delta = 0;
    for c in code.chars() {
        match c {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Scans one file's contents. `path` is the workspace-relative path used
/// for rule scoping, allowlists and reporting.
pub fn scan_source(path: &str, kind: FileKind, contents: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = contents.lines().collect();
    let in_test = test_region_map(&lines);

    let fixture = kind == FileKind::Fixture;
    let crate_root =
        kind == FileKind::CrateRoot || (fixture && contents.contains(CRATE_ROOT_MARKER));
    let unwrap_scope = fixture || path.starts_with("crates/runtime/src");
    let raw_mutex_scope = !path.starts_with("crates/analysis");

    if crate_root && !contents.contains(PAT_FORBID_UNSAFE) {
        findings.push(Finding {
            rule: "forbid-unsafe",
            path: path.to_string(),
            line: 1,
            message: format!("crate root is missing `{PAT_FORBID_UNSAFE}`"),
        });
    }

    for (i, line) in lines.iter().enumerate() {
        let number = i + 1;
        let code = code_portion(line);
        let waived =
            |rule: &str| line.contains(&format!("lint: allow({rule})")) || allowed(rule, path);
        let mut push = |rule: &'static str, message: String| {
            if !waived(rule) {
                findings.push(Finding {
                    rule,
                    path: path.to_string(),
                    line: number,
                    message,
                });
            }
        };

        if raw_mutex_scope {
            for token in RAW_SYNC_TOKENS {
                if has_token(code, token) {
                    push(
                        "raw-mutex",
                        format!(
                            "raw `std::sync::{token}` outside crates/analysis; use the \
                             Ordered{} wrapper so the lock carries a rank",
                            if token == "Condvar" {
                                "Condvar"
                            } else {
                                "Mutex"
                            }
                        ),
                    );
                }
            }
        }

        if in_test[i] {
            continue;
        }

        if unwrap_scope {
            if code.contains(PAT_UNWRAP) {
                push(
                    "no-unwrap",
                    format!(
                        "`{PAT_UNWRAP}` in runtime library code; recover poisoned locks \
                         via `lock_healthy` or surface a RuntimeError"
                    ),
                );
            }
            if code.contains(PAT_EXPECT) {
                push(
                    "no-unwrap",
                    format!(
                        "`{PAT_EXPECT}...)` in runtime library code; recover poisoned \
                         locks via `lock_healthy` or surface a RuntimeError"
                    ),
                );
            }
        }

        for pattern in [PAT_RELAXED, PAT_SEQCST] {
            if code.contains(pattern) && !line.contains(PAT_ORDERING_COMMENT) {
                push(
                    "atomic-ordering",
                    format!(
                        "`{pattern}` without a trailing `{PAT_ORDERING_COMMENT}` \
                         justification comment"
                    ),
                );
            }
        }

        if code.contains(PAT_SLEEP) {
            push(
                "no-sleep",
                format!("`{PAT_SLEEP}` in library code; blocking the pool hides backpressure"),
            );
        }

        // The fused-ingest and snapshot-io rules share the no-unwrap
        // scope: serve-path library code under crates/runtime/src, plus
        // fixtures.
        if unwrap_scope {
            for pattern in INGEST_PATTERNS {
                if code.contains(pattern) {
                    push(
                        "frame-ingest",
                        format!(
                            "direct `{pattern}...)` pixel pass in runtime library code; the \
                             serve path computes histogram, signature and content hash in \
                             one fused `FrameIngest` pass"
                        ),
                    );
                }
            }
            for pattern in SNAPSHOT_IO_PATTERNS {
                if code.contains(pattern) {
                    push(
                        "snapshot-io",
                        format!(
                            "`{pattern}...` in runtime library code; snapshot save/restore \
                             takes caller-supplied Read/Write streams so path handling and \
                             fsync policy stay with the caller and I/O failures surface as \
                             typed SnapshotError::Io values"
                        ),
                    );
                }
            }
        }
    }
    findings
}

/// Scans a fixture file from disk with every rule armed.
pub fn scan_fixture(path: &Path) -> io::Result<Vec<Finding>> {
    let contents = fs::read_to_string(path)?;
    Ok(scan_source(
        &path.display().to_string(),
        FileKind::Fixture,
        &contents,
    ))
}

/// Scans the workspace rooted at `root`: every `.rs` file under
/// `crates/*/src` and the facade's `src/`.
pub fn scan_workspace(root: &Path) -> io::Result<(usize, Vec<Finding>)> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;

    let mut findings = Vec::new();
    let scanned = files.len();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let kind = if rel.ends_with("src/lib.rs") {
            FileKind::CrateRoot
        } else {
            FileKind::Library
        };
        let contents = fs::read_to_string(&file)?;
        findings.extend(scan_source(&rel, kind, &contents));
    }
    Ok((scanned, findings))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_and_expect_flag_in_runtime_library_code() {
        let source = "fn serve() {\n    let g = lock.lock().unwrap();\n    let h = other.lock().expect(\"x\");\n}\n";
        let findings = scan_source("crates/runtime/src/engine.rs", FileKind::Library, source);
        assert_eq!(rules(&findings), vec!["no-unwrap", "no-unwrap"]);
        assert_eq!(findings[0].line, 2);
        // The same text outside the runtime crate is not in scope.
        assert!(scan_source("crates/core/src/policy.rs", FileKind::Library, source).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_library_rules() {
        let source = "fn serve() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x.lock().unwrap();\n        std::thread::sleep(d);\n        c.load(Ordering::SeqCst);\n    }\n}\n";
        let findings = scan_source("crates/runtime/src/engine.rs", FileKind::Library, source);
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn unjustified_relaxed_flags_and_justified_passes() {
        let bad = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let good =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); } // ordering: monotonic counter\n";
        assert_eq!(
            rules(&scan_source("crates/core/src/a.rs", FileKind::Library, bad)),
            vec!["atomic-ordering"]
        );
        assert!(scan_source("crates/core/src/a.rs", FileKind::Library, good).is_empty());
    }

    #[test]
    fn raw_sync_primitives_flag_but_ordered_wrappers_pass() {
        let raw = "use std::sync::{Mutex, Condvar};\n";
        let findings = scan_source("crates/runtime/src/cache.rs", FileKind::Library, raw);
        assert_eq!(rules(&findings), vec!["raw-mutex", "raw-mutex"]);
        let wrapped = "use hebs_analysis::{OrderedMutex, OrderedCondvar, OrderedMutexGuard};\n";
        assert!(scan_source("crates/runtime/src/cache.rs", FileKind::Library, wrapped).is_empty());
        // crates/analysis itself wraps the raw primitives.
        assert!(scan_source("crates/analysis/src/lockdep.rs", FileKind::Library, raw).is_empty());
    }

    #[test]
    fn sleep_flags_in_library_code_but_bench_is_allowlisted() {
        let source = "fn pace() { std::thread::sleep(d); }\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/serving.rs",
                FileKind::Library,
                source
            )),
            vec!["no-sleep"]
        );
        assert!(
            scan_source("crates/bench/src/loadgen.rs", FileKind::Library, source).is_empty(),
            "bench pacing is allowlisted"
        );
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let bare = "pub mod engine;\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/lib.rs",
                FileKind::CrateRoot,
                bare
            )),
            vec!["forbid-unsafe"]
        );
        let sealed = format!("{PAT_FORBID_UNSAFE}\npub mod engine;\n");
        assert!(scan_source("crates/runtime/src/lib.rs", FileKind::CrateRoot, &sealed).is_empty());
    }

    #[test]
    fn inline_waiver_suppresses_a_single_rule() {
        let source =
            "fn f() { x.lock().unwrap(); } // lint: allow(no-unwrap) invariant: set above\n";
        assert!(scan_source("crates/runtime/src/engine.rs", FileKind::Library, source).is_empty());
        // The waiver names one rule; others still fire.
        let sleepy = "fn f() { std::thread::sleep(d); } // lint: allow(no-unwrap)\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/engine.rs",
                FileKind::Library,
                sleepy
            )),
            vec!["no-sleep"]
        );
    }

    #[test]
    fn direct_histogram_passes_flag_in_runtime_library_code() {
        let source = "fn serve(frame: &GrayImage) {\n    let h = Histogram::of(frame);\n    let s = HistogramSignature::of(frame);\n}\n";
        let findings = scan_source("crates/runtime/src/engine.rs", FileKind::Library, source);
        assert_eq!(rules(&findings), vec!["frame-ingest", "frame-ingest"]);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
        // The signature call is reported once, not once per pattern.
        let sig_only = "fn key(frame: &GrayImage) { HistogramSignature::of(frame); }\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/cache.rs",
                FileKind::Library,
                sig_only
            )),
            vec!["frame-ingest"]
        );
        // Outside the runtime crate the fused-ingest contract does not
        // apply: hebs-core's pipeline legitimately builds histograms.
        assert!(scan_source("crates/core/src/pipeline.rs", FileKind::Library, source).is_empty());
        // A waived line (e.g. a build-time capability probe) passes.
        let waived = "fn probe() { Histogram::of(&img); } // lint: allow(frame-ingest) 4x4 probe\n";
        assert!(scan_source("crates/runtime/src/engine.rs", FileKind::Library, waived).is_empty());
        // Test modules keep building histograms directly.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn h() { Histogram::of(&img); }\n}\n";
        assert!(
            scan_source("crates/runtime/src/engine.rs", FileKind::Library, test_only).is_empty()
        );
    }

    #[test]
    fn filesystem_access_flags_in_runtime_library_code() {
        let source = "fn save(path: &Path) {\n    let f = std::fs::File::create(path);\n}\n";
        let findings = scan_source("crates/runtime/src/snapshot.rs", FileKind::Library, source);
        // One line trips both the module path and the constructor pattern.
        assert_eq!(rules(&findings), vec!["snapshot-io", "snapshot-io"]);
        assert_eq!(findings[0].line, 2);
        // A bare File::open without the fs path still flags.
        let opened = "fn load() { let f = File::open(\"bank.snap\"); }\n";
        assert_eq!(
            rules(&scan_source(
                "crates/runtime/src/engine.rs",
                FileKind::Library,
                opened
            )),
            vec!["snapshot-io"]
        );
        // Outside the runtime crate (e.g. the bench harness writing JSON
        // reports, this lint pass itself) filesystem access is fine.
        assert!(scan_source("crates/bench/src/json.rs", FileKind::Library, source).is_empty());
        assert!(scan_source("crates/analysis/src/lint.rs", FileKind::Library, source).is_empty());
        // Stream-generic snapshot plumbing passes.
        let streamed = "fn save<W: Write>(w: &mut W) -> Result<(), SnapshotError> { Ok(()) }\n";
        assert!(scan_source(
            "crates/runtime/src/snapshot.rs",
            FileKind::Library,
            streamed
        )
        .is_empty());
        // Test modules may touch temp files directly.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::remove_file(p); }\n}\n";
        assert!(
            scan_source("crates/runtime/src/engine.rs", FileKind::Library, test_only).is_empty()
        );
    }

    #[test]
    fn fixture_mode_arms_every_rule() {
        let source = "fn f() { x.lock().unwrap(); }\n";
        assert_eq!(
            rules(&scan_source("anything.rs", FileKind::Fixture, source)),
            vec!["no-unwrap"]
        );
        let marked = format!("{CRATE_ROOT_MARKER}\npub fn f() {{}}\n");
        assert_eq!(
            rules(&scan_source("anything.rs", FileKind::Fixture, &marked)),
            vec!["forbid-unsafe"]
        );
    }
}
