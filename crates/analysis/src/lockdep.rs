//! Lock-order (lockdep) verification for the runtime's hand-rolled locks.
//!
//! Every lock in the serving runtime declares a [`LockClass`] — a rank in
//! the global acquisition order. Under `debug_assertions` (or the
//! `lockdep` cargo feature) each thread tracks its held-lock set and every
//! acquisition records an edge in a process-wide lock-order graph. Three
//! bug shapes panic immediately, naming both acquisition sites:
//!
//! * **rank inversion** — acquiring a lock whose class ranks *below* one
//!   already held (the declared order says it must be taken first);
//! * **reentrant acquisition** — re-locking an instance the thread already
//!   holds (guaranteed deadlock on `std::sync::Mutex`);
//! * **order cycle** — an acquisition that closes a cycle in the observed
//!   lock-order graph across threads, even within a single rank (e.g. two
//!   same-class instances taken in opposite orders by two threads).
//!
//! With the checker disabled the wrappers are transparent newtypes over
//! `std::sync` — `lock()` is `#[inline]` passthrough and the guard type is
//! a type alias for the std guard, so the release serve path is unchanged.

use std::fmt;

/// The global acquisition order for the runtime's locks, outermost first.
///
/// A thread may acquire a lock only while every lock it already holds
/// ranks at or below the new lock's class — ranks never decrease along an
/// acquisition chain. Concretely: take `TenantRegistry` before any serve-path
/// lock, the open-loop `Sketch` before the `OpenLoopSlot` it publishes
/// into, a `CacheShard` before the single-flight `FlightTable`, and
/// `Stats`-class leaf bookkeeping last (never holding it across another
/// acquisition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockClass {
    /// Tenant-registry bookkeeping (admission, per-tenant tables) —
    /// outermost: admission control runs before the serve path touches
    /// any engine lock.
    TenantRegistry,
    /// The per-engine snapshot/restore gate: serializes whole-bank
    /// save/restore against each other while a restore's installs take the
    /// serve-path locks below it. Ranked above every serve-path lock and
    /// below the registry, so registry-level save/load-all composes.
    Snapshot,
    /// A per-class rolling traffic sketch feeding re-characterization.
    /// Ranked above the slot it publishes into: a rebuild drains the
    /// sketch and then installs the new curve.
    Sketch,
    /// The open-loop curve-bank slot a rebuilt characteristic is swapped
    /// into.
    OpenLoopSlot,
    /// One shard of the sharded transformation cache (LRU + byte budget).
    CacheShard,
    /// One shard of the single-flight table coalescing concurrent misses.
    FlightTable,
    /// Leaf bookkeeping: batch result slots, stream feed hand-off, bench
    /// aggregation. Never held across another lock acquisition.
    Stats,
}

impl LockClass {
    /// Position in the global acquisition order; lower ranks are acquired
    /// first (outermost).
    pub const fn rank(self) -> u8 {
        match self {
            LockClass::TenantRegistry => 10,
            LockClass::Snapshot => 15,
            LockClass::Sketch => 20,
            LockClass::OpenLoopSlot => 30,
            LockClass::CacheShard => 40,
            LockClass::FlightTable => 50,
            LockClass::Stats => 60,
        }
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LockClass::TenantRegistry => "TenantRegistry",
            LockClass::Snapshot => "Snapshot",
            LockClass::Sketch => "Sketch",
            LockClass::OpenLoopSlot => "OpenLoopSlot",
            LockClass::CacheShard => "CacheShard",
            LockClass::FlightTable => "FlightTable",
            LockClass::Stats => "Stats",
        };
        write!(f, "{name} (rank {})", self.rank())
    }
}

/// Recovers a guard from a possibly poisoned lock result.
///
/// Lock poisoning means a *previous* holder panicked, not that the
/// protected data is torn — every critical section in the runtime either
/// completes its update or leaves the structure consistent. Cascading the
/// poison panic through the worker pool would convert one bad frame into
/// a dead engine, so the runtime recovers the guard and counts the event
/// (`EngineStats::poison_recoveries`) via `on_poison` instead.
pub fn lock_healthy<G>(
    result: Result<G, std::sync::PoisonError<G>>,
    on_poison: impl FnOnce(),
) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => {
            on_poison();
            poisoned.into_inner()
        }
    }
}

#[cfg(any(debug_assertions, feature = "lockdep"))]
mod imp {
    use super::LockClass;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{
        Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard,
        RwLockWriteGuard, WaitTimeoutResult,
    };
    use std::time::Duration;

    /// Unique id per lock instance, so the order graph distinguishes two
    /// locks of the same class (e.g. two cache shards).
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    fn next_id() -> u64 {
        NEXT_ID.fetch_add(1, Ordering::Relaxed) // ordering: id allocation only needs uniqueness
    }

    type Site = &'static Location<'static>;

    #[derive(Clone, Copy)]
    struct HeldEntry {
        id: u64,
        class: LockClass,
        site: Site,
    }

    thread_local! {
        /// The acquisition stack of the current thread.
        static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
    }

    #[derive(Clone, Copy)]
    struct Edge {
        from_class: LockClass,
        to_class: LockClass,
        from_site: Site,
        to_site: Site,
    }

    /// Adjacency list of observed lock-order edges, keyed by instance id.
    type OrderGraph = HashMap<u64, Vec<(u64, Edge)>>;

    /// Observed lock-order edges: `from` instance was held while `to` was
    /// acquired, with the first-seen acquisition sites of both.
    static GRAPH: Mutex<Option<OrderGraph>> = Mutex::new(None);

    /// Is `to` already ordered (transitively) before `from`? Returns the
    /// first edge of a witnessing path for the panic message.
    fn path_between(graph: &OrderGraph, from: u64, to: u64) -> Option<Edge> {
        let mut stack: Vec<(u64, Option<Edge>)> = vec![(from, None)];
        let mut visited = std::collections::HashSet::new();
        while let Some((node, first)) = stack.pop() {
            if !visited.insert(node) {
                continue;
            }
            for (next, edge) in graph.get(&node).into_iter().flatten() {
                let first = Some(first.unwrap_or(*edge));
                if *next == to {
                    return first;
                }
                stack.push((*next, first));
            }
        }
        None
    }

    /// Validates acquiring `(id, class)` at `site` against the held set
    /// and the global order graph, then records the acquisition. Panics
    /// on reentrancy, rank inversion or an order cycle.
    fn register(id: u64, class: LockClass, site: Site) {
        let violation = HELD.with(|held| {
            let held = held.borrow();
            if let Some(prior) = held.iter().find(|e| e.id == id) {
                return Some(format!(
                    "lockdep: reentrant acquisition of {class} at {site}; \
                     this thread already holds it from {}",
                    prior.site
                ));
            }
            if let Some(top) = held.iter().max_by_key(|e| e.class.rank()) {
                if top.class.rank() > class.rank() {
                    return Some(format!(
                        "lockdep: lock-order inversion: acquiring {class} at {site} \
                         while holding {} acquired at {}; the declared order takes \
                         {class} first",
                        top.class, top.site
                    ));
                }
            }
            // Record edges held -> new and probe for a cycle the new edge
            // would close (covers same-rank instances the rank check
            // cannot order).
            let mut guard = super::lock_healthy(GRAPH.lock(), || {});
            let graph = guard.get_or_insert_with(HashMap::new);
            for entry in held.iter() {
                if let Some(witness) = path_between(graph, id, entry.id) {
                    return Some(format!(
                        "lockdep: lock-order cycle: acquiring {class} at {site} while \
                         holding {} acquired at {}, but the observed order already \
                         requires {} before {} (edge {} -> {} recorded at {} -> {})",
                        entry.class,
                        entry.site,
                        witness.from_class,
                        witness.to_class,
                        witness.from_class,
                        witness.to_class,
                        witness.from_site,
                        witness.to_site
                    ));
                }
                let edges = graph.entry(entry.id).or_default();
                if !edges.iter().any(|(to, _)| *to == id) {
                    edges.push((
                        id,
                        Edge {
                            from_class: entry.class,
                            to_class: class,
                            from_site: entry.site,
                            to_site: site,
                        },
                    ));
                }
            }
            None
        });
        if let Some(message) = violation {
            panic!("{message}");
        }
        HELD.with(|held| held.borrow_mut().push(HeldEntry { id, class, site }));
    }

    /// Removes the most recent registration of `id` from the held set.
    fn unregister(id: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|e| e.id == id) {
                held.remove(pos);
            }
        });
    }

    /// A [`Mutex`] that participates in lock-order verification.
    pub struct OrderedMutex<T: ?Sized> {
        class: LockClass,
        id: u64,
        inner: Mutex<T>,
    }

    impl<T> OrderedMutex<T> {
        pub fn new(class: LockClass, value: T) -> Self {
            Self {
                class,
                id: next_id(),
                inner: Mutex::new(value),
            }
        }

        /// Acquires the lock, first validating the acquisition against
        /// the thread's held set and the global order graph.
        #[track_caller]
        pub fn lock(&self) -> LockResult<OrderedMutexGuard<'_, T>> {
            let site = Location::caller();
            register(self.id, self.class, site);
            match self.inner.lock() {
                Ok(inner) => Ok(self.guard(inner)),
                Err(poisoned) => Err(PoisonError::new(self.guard(poisoned.into_inner()))),
            }
        }

        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }

        fn guard<'a>(&'a self, inner: MutexGuard<'a, T>) -> OrderedMutexGuard<'a, T> {
            OrderedMutexGuard {
                inner: Some(inner),
                id: self.id,
                class: self.class,
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("OrderedMutex")
                .field("class", &self.class)
                .field("inner", &self.inner)
                .finish()
        }
    }

    /// Guard for [`OrderedMutex`]; releasing it pops the lock from the
    /// thread's held set.
    pub struct OrderedMutexGuard<'a, T: ?Sized> {
        /// `None` only transiently while parked in a condvar wait (the
        /// std guard has been surrendered to `Condvar::wait`).
        inner: Option<MutexGuard<'a, T>>,
        id: u64,
        class: LockClass,
    }

    impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner
                .as_ref()
                .expect("guard surrendered to a condvar wait")
        }
    }

    impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner
                .as_mut()
                .expect("guard surrendered to a condvar wait")
        }
    }

    impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.is_some() {
                unregister(self.id);
            }
        }
    }

    /// A [`Condvar`] aware of [`OrderedMutex`] guards: waiting surrenders
    /// the lock (popping it from the held set) and re-registers the
    /// reacquisition when the wait returns.
    pub struct OrderedCondvar {
        inner: Condvar,
    }

    impl OrderedCondvar {
        pub const fn new() -> Self {
            Self {
                inner: Condvar::new(),
            }
        }

        #[track_caller]
        pub fn wait<'a, T>(
            &self,
            mut guard: OrderedMutexGuard<'a, T>,
        ) -> LockResult<OrderedMutexGuard<'a, T>> {
            let site = Location::caller();
            let (id, class) = (guard.id, guard.class);
            let inner = guard.inner.take().expect("guard surrendered twice");
            drop(guard);
            unregister(id);
            let rebuild = |inner: MutexGuard<'a, T>| {
                register(id, class, site);
                OrderedMutexGuard {
                    inner: Some(inner),
                    id,
                    class,
                }
            };
            match self.inner.wait(inner) {
                Ok(inner) => Ok(rebuild(inner)),
                Err(poisoned) => Err(PoisonError::new(rebuild(poisoned.into_inner()))),
            }
        }

        #[track_caller]
        pub fn wait_timeout<'a, T>(
            &self,
            mut guard: OrderedMutexGuard<'a, T>,
            timeout: Duration,
        ) -> LockResult<(OrderedMutexGuard<'a, T>, WaitTimeoutResult)> {
            let site = Location::caller();
            let (id, class) = (guard.id, guard.class);
            let inner = guard.inner.take().expect("guard surrendered twice");
            drop(guard);
            unregister(id);
            let rebuild = |inner: MutexGuard<'a, T>| {
                register(id, class, site);
                OrderedMutexGuard {
                    inner: Some(inner),
                    id,
                    class,
                }
            };
            match self.inner.wait_timeout(inner, timeout) {
                Ok((inner, timed_out)) => Ok((rebuild(inner), timed_out)),
                Err(poisoned) => {
                    let (inner, timed_out) = poisoned.into_inner();
                    Err(PoisonError::new((rebuild(inner), timed_out)))
                }
            }
        }

        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl Default for OrderedCondvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl fmt::Debug for OrderedCondvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("OrderedCondvar").finish()
        }
    }

    /// An [`RwLock`] that participates in lock-order verification. Both
    /// read and write acquisitions are ranked — a reentrant read is
    /// flagged too, because it can deadlock against a queued writer.
    pub struct OrderedRwLock<T: ?Sized> {
        class: LockClass,
        id: u64,
        inner: RwLock<T>,
    }

    impl<T> OrderedRwLock<T> {
        pub fn new(class: LockClass, value: T) -> Self {
            Self {
                class,
                id: next_id(),
                inner: RwLock::new(value),
            }
        }

        #[track_caller]
        pub fn read(&self) -> LockResult<OrderedRwLockReadGuard<'_, T>> {
            let site = Location::caller();
            register(self.id, self.class, site);
            match self.inner.read() {
                Ok(inner) => Ok(OrderedRwLockReadGuard { inner, id: self.id }),
                Err(poisoned) => Err(PoisonError::new(OrderedRwLockReadGuard {
                    inner: poisoned.into_inner(),
                    id: self.id,
                })),
            }
        }

        #[track_caller]
        pub fn write(&self) -> LockResult<OrderedRwLockWriteGuard<'_, T>> {
            let site = Location::caller();
            register(self.id, self.class, site);
            match self.inner.write() {
                Ok(inner) => Ok(OrderedRwLockWriteGuard { inner, id: self.id }),
                Err(poisoned) => Err(PoisonError::new(OrderedRwLockWriteGuard {
                    inner: poisoned.into_inner(),
                    id: self.id,
                })),
            }
        }

        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("OrderedRwLock")
                .field("class", &self.class)
                .field("inner", &self.inner)
                .finish()
        }
    }

    /// Shared-read guard for [`OrderedRwLock`].
    pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
        inner: RwLockReadGuard<'a, T>,
        id: u64,
    }

    impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> Drop for OrderedRwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            unregister(self.id);
        }
    }

    /// Exclusive-write guard for [`OrderedRwLock`].
    pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
        inner: RwLockWriteGuard<'a, T>,
        id: u64,
    }

    impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for OrderedRwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            unregister(self.id);
        }
    }
}

#[cfg(not(any(debug_assertions, feature = "lockdep")))]
mod imp {
    //! Checker disabled: transparent newtypes over `std::sync` with
    //! `#[inline]` passthrough and std guard aliases — zero overhead on
    //! the release serve path.

    use super::LockClass;
    use std::fmt;
    use std::sync::{Condvar, LockResult, Mutex, RwLock, WaitTimeoutResult};
    use std::time::Duration;

    pub type OrderedMutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    pub type OrderedRwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    pub type OrderedRwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

    pub struct OrderedMutex<T: ?Sized> {
        inner: Mutex<T>,
    }

    impl<T> OrderedMutex<T> {
        #[inline]
        pub fn new(_class: LockClass, value: T) -> Self {
            Self {
                inner: Mutex::new(value),
            }
        }

        #[inline]
        pub fn lock(&self) -> LockResult<OrderedMutexGuard<'_, T>> {
            self.inner.lock()
        }

        #[inline]
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }

        #[inline]
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    pub struct OrderedCondvar {
        inner: Condvar,
    }

    impl OrderedCondvar {
        #[inline]
        pub const fn new() -> Self {
            Self {
                inner: Condvar::new(),
            }
        }

        #[inline]
        pub fn wait<'a, T>(
            &self,
            guard: OrderedMutexGuard<'a, T>,
        ) -> LockResult<OrderedMutexGuard<'a, T>> {
            self.inner.wait(guard)
        }

        #[inline]
        pub fn wait_timeout<'a, T>(
            &self,
            guard: OrderedMutexGuard<'a, T>,
            timeout: Duration,
        ) -> LockResult<(OrderedMutexGuard<'a, T>, WaitTimeoutResult)> {
            self.inner.wait_timeout(guard, timeout)
        }

        #[inline]
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        #[inline]
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl Default for OrderedCondvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl fmt::Debug for OrderedCondvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("OrderedCondvar").finish()
        }
    }

    pub struct OrderedRwLock<T: ?Sized> {
        inner: RwLock<T>,
    }

    impl<T> OrderedRwLock<T> {
        #[inline]
        pub fn new(_class: LockClass, value: T) -> Self {
            Self {
                inner: RwLock::new(value),
            }
        }

        #[inline]
        pub fn read(&self) -> LockResult<OrderedRwLockReadGuard<'_, T>> {
            self.inner.read()
        }

        #[inline]
        pub fn write(&self) -> LockResult<OrderedRwLockWriteGuard<'_, T>> {
            self.inner.write()
        }

        #[inline]
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }

        #[inline]
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }
}

pub use imp::{
    OrderedCondvar, OrderedMutex, OrderedMutexGuard, OrderedRwLock, OrderedRwLockReadGuard,
    OrderedRwLockWriteGuard,
};

// Without the checking `imp` the wrappers are transparent newtypes: the
// panic-expecting tests would fail, and the reentrancy test would turn
// into a genuine self-deadlock, so the module only exists where the
// checks do (plain `cargo test` has `debug_assertions`, CI's release leg
// enables the `lockdep` feature).
#[cfg(all(test, any(debug_assertions, feature = "lockdep")))]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::time::Duration;

    fn panic_message(result: std::thread::Result<()>) -> String {
        let payload = result.expect_err("expected a lockdep panic");
        if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            panic!("non-string panic payload");
        }
    }

    #[test]
    fn rank_inversion_panics_naming_both_sites() {
        let flight = OrderedMutex::new(LockClass::FlightTable, ());
        let shard = OrderedMutex::new(LockClass::CacheShard, ());
        let message = panic_message(
            std::thread::Builder::new()
                .name("lockdep-inversion".into())
                .spawn(move || {
                    let _outer = flight.lock().unwrap();
                    let _inner = shard.lock().unwrap(); // inverted: shard ranks before flight
                })
                .unwrap()
                .join(),
        );
        assert!(
            message.contains("lock-order inversion"),
            "unexpected message: {message}"
        );
        assert!(message.contains("CacheShard"), "message: {message}");
        assert!(message.contains("FlightTable"), "message: {message}");
        // Both acquisition sites are named (this file, two distinct lines).
        let occurrences = message.matches("lockdep.rs").count();
        assert!(
            occurrences >= 2,
            "expected both sites in the message: {message}"
        );
    }

    #[test]
    fn cycle_across_three_same_rank_locks_is_detected() {
        let a = Arc::new(OrderedMutex::new(LockClass::Stats, 'a'));
        let b = Arc::new(OrderedMutex::new(LockClass::Stats, 'b'));
        let c = Arc::new(OrderedMutex::new(LockClass::Stats, 'c'));
        // Establish a -> b and b -> c (consistent so far).
        {
            let _a = a.lock().unwrap();
            let _b = b.lock().unwrap();
        }
        {
            let _b = b.lock().unwrap();
            let _c = c.lock().unwrap();
        }
        // c -> a closes the cycle; same rank, so only the graph can see it.
        let message = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _c = c.lock().unwrap();
            let _a = a.lock().unwrap();
        })));
        assert!(
            message.contains("lock-order cycle"),
            "unexpected message: {message}"
        );
        assert!(
            message.matches("lockdep.rs").count() >= 2,
            "expected both sites in the message: {message}"
        );
    }

    #[test]
    fn reentrant_acquisition_is_detected() {
        let lock = Arc::new(OrderedMutex::new(LockClass::CacheShard, 0u32));
        let message = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _first = lock.lock().unwrap();
            let _second = lock.lock().unwrap();
        })));
        assert!(
            message.contains("reentrant acquisition"),
            "unexpected message: {message}"
        );
    }

    #[test]
    fn declared_order_and_releases_pass_clean() {
        let registry = OrderedMutex::new(LockClass::TenantRegistry, ());
        let shard = OrderedMutex::new(LockClass::CacheShard, ());
        let flight = OrderedMutex::new(LockClass::FlightTable, ());
        {
            let _r = registry.lock().unwrap();
            let _s = shard.lock().unwrap();
            let _f = flight.lock().unwrap();
        }
        // Dropping the guards pops the held set: re-acquiring from the top
        // must not trip the reentrancy or order checks.
        let _s = shard.lock().unwrap();
        drop(_s);
        let _r = registry.lock().unwrap();
    }

    #[test]
    fn condvar_wait_surrenders_and_reacquires_the_lock() {
        let pair = Arc::new((
            OrderedMutex::new(LockClass::FlightTable, false),
            OrderedCondvar::new(),
        ));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, condvar) = (&pair.0, &pair.1);
                let mut ready = lock.lock().unwrap();
                while !*ready {
                    ready = condvar.wait(ready).unwrap();
                }
                // The reacquired guard participates in ordering again: a
                // lower-rank acquisition here would panic, a leaf is fine.
                *ready
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        {
            let (lock, condvar) = (&pair.0, &pair.1);
            *lock.lock().unwrap() = true;
            condvar.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn rwlock_participates_in_ordering() {
        let sketch = OrderedRwLock::new(LockClass::Sketch, 1u32);
        let slot = OrderedMutex::new(LockClass::OpenLoopSlot, ());
        {
            let _read = sketch.read().unwrap();
            let _slot = slot.lock().unwrap(); // sketch ranks before slot
        }
        let message = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _slot = slot.lock().unwrap();
            let _write = sketch.write().unwrap();
        })));
        assert!(
            message.contains("lock-order inversion"),
            "unexpected message: {message}"
        );
    }
}
