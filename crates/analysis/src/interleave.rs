//! Deterministic interleaving stress: seeded yield-injection points.
//!
//! The runtime compiles [`point`] calls into its race-prone seams — the
//! single-flight wait/notify handshake, the cache insert-evict path, the
//! generation-swap CAS and tenant admission. With a schedule seed
//! installed ([`set_seed`], or the `HEBS_INTERLEAVE_SEED` environment
//! variable) each point hashes `(seed, point id, visit index)` and decides
//! whether to yield the thread — perturbing the interleaving the OS
//! scheduler would otherwise produce. Replaying the same seed over the
//! same workload walks threads through the same yield decisions, so a
//! harness can re-run invariant tests under N *distinct, reproducible*
//! schedules instead of the one schedule the runner happens to produce.
//!
//! The points are compiled out entirely in release builds (no
//! `debug_assertions` and no `lockdep` feature): [`point`] is an empty
//! `#[inline(always)]` function, keeping the serve path zero-cost.

#[cfg(any(debug_assertions, feature = "lockdep"))]
mod imp {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Once;

    /// The mixed schedule seed; 0 means disabled.
    static STATE: AtomicU64 = AtomicU64::new(0);
    /// Global visit counter: makes successive visits to one point take
    /// different decisions while staying a pure function of the seed and
    /// the visit order.
    static TICK: AtomicU64 = AtomicU64::new(0);
    static ENV_INIT: Once = Once::new();

    /// SplitMix64 finalizer — a cheap, well-distributed bit mixer.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn hash_id(id: &str) -> u64 {
        // FNV-1a: stable across runs, unlike `RandomState`.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in id.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Installs (or, with `None`, removes) the schedule seed and resets
    /// the visit counter so replays of the same workload see the same
    /// decision sequence.
    pub fn set_seed(seed: Option<u64>) {
        TICK.store(0, Ordering::Relaxed); // ordering: best-effort reset; exact replay needs a quiesced process anyway
        let state = match seed {
            // `max(1)` keeps an explicit seed of 0 distinct from "off".
            Some(seed) => mix(seed).max(1),
            None => 0,
        };
        STATE.store(state, Ordering::Relaxed); // ordering: points only need to eventually observe the new seed
    }

    /// Whether a schedule seed is currently installed.
    pub fn is_enabled() -> bool {
        ENV_INIT.call_once(init_from_env);
        STATE.load(Ordering::Relaxed) != 0 // ordering: advisory read for logging/tests
    }

    fn init_from_env() {
        if let Some(seed) = std::env::var("HEBS_INTERLEAVE_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            set_seed(Some(seed));
        }
    }

    /// A named interleaving point. No-op unless a seed is installed.
    #[inline]
    pub fn point(id: &str) {
        ENV_INIT.call_once(init_from_env);
        let seed = STATE.load(Ordering::Relaxed); // ordering: a stale read just delays the perturbation by a visit
        if seed != 0 {
            perturb(seed, id);
        }
    }

    #[cold]
    fn perturb(seed: u64, id: &str) {
        let tick = TICK.fetch_add(1, Ordering::Relaxed); // ordering: the counter only feeds the hash
        let decision = mix(seed ^ hash_id(id) ^ mix(tick));
        // Yield on ~3/8 of visits, occasionally twice: enough to shuffle
        // wait/notify and CAS races without serializing the test.
        if decision % 8 < 3 {
            std::thread::yield_now();
            if decision % 16 >= 8 {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(not(any(debug_assertions, feature = "lockdep")))]
mod imp {
    /// Release build: interleaving points compile to nothing.
    #[inline(always)]
    pub fn point(_id: &str) {}

    /// Release build: there is no schedule to install.
    #[inline(always)]
    pub fn set_seed(_seed: Option<u64>) {}

    /// Release build: never enabled.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }
}

pub use imp::{is_enabled, point, set_seed};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_inert_until_seeded() {
        // Inert by default (no env var in the test environment) and cheap
        // to call either way.
        for _ in 0..1000 {
            point("test.noop");
        }
        set_seed(Some(42));
        // Only the checking build installs a schedule; the release stub
        // stays inert no matter what is seeded.
        assert_eq!(
            is_enabled(),
            cfg!(any(debug_assertions, feature = "lockdep"))
        );
        for _ in 0..1000 {
            point("test.seeded");
        }
        set_seed(None);
        assert!(!is_enabled());
    }
}
