//! The unified distortion-measure interface.
//!
//! The HEBS pipeline and the benchmark harness are parameterized over the
//! distortion measure so that the paper's choice (HVS-filtered UIQI) can be
//! compared against plain UIQI, SSIM and RMSE in the ablation experiments.

use hebs_imaging::GrayImage;

use crate::hvs::HvsModel;
use crate::mse::root_mean_squared_error;
use crate::ssim::structural_similarity;
use crate::uiqi::universal_quality_index;

/// A measure of the distortion between an original and a transformed image.
///
/// Implementations return a value in `[0, 1]`, where 0 means "visually
/// identical" and larger values mean stronger degradation. The HEBS flow
/// compares this value against the user's tolerable distortion `D_max`.
pub trait DistortionMeasure {
    /// Computes the distortion between `original` and `transformed`.
    ///
    /// # Panics
    ///
    /// Implementations panic if the images have different dimensions.
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64;

    /// Short human-readable name used in benchmark reports.
    fn name(&self) -> &'static str;
}

/// Which windowed quality index the [`HebsDistortion`] measure compares the
/// HVS-filtered images with.
///
/// The paper's text names the Universal Image Quality Index (reference [8]),
/// but the raw UIQI is numerically unstable on near-flat windows (its
/// denominator vanishes), which makes it useless on images smoother than the
/// noisy photographs the authors used. Its stabilized successor — SSIM, the
/// paper's reference [6], identical to UIQI apart from the two stabilization
/// constants — is therefore the reproduction's default; the ablation
/// benchmark quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QualityIndex {
    /// Stabilized index (SSIM): robust on smooth regions. Default.
    #[default]
    Stabilized,
    /// The raw Universal Image Quality Index, as named in the paper.
    Uiqi,
}

/// The paper's distortion measure: both images are passed through the
/// human-visual-system model, then compared with a windowed quality index;
/// distortion is `1 − Q`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HebsDistortion {
    /// The HVS pre-filter applied to both images before comparison.
    pub hvs: HvsModel,
    /// The windowed quality index used after HVS filtering.
    pub index: QualityIndex,
}

impl Default for HebsDistortion {
    fn default() -> Self {
        HebsDistortion {
            hvs: HvsModel::default(),
            index: QualityIndex::Stabilized,
        }
    }
}

impl HebsDistortion {
    /// Creates the measure with an explicit HVS model (and the default
    /// stabilized index).
    pub fn new(hvs: HvsModel) -> Self {
        HebsDistortion {
            hvs,
            index: QualityIndex::Stabilized,
        }
    }

    /// The measure without any HVS weighting.
    pub fn without_hvs() -> Self {
        HebsDistortion {
            hvs: HvsModel::identity(),
            index: QualityIndex::Stabilized,
        }
    }

    /// The measure exactly as worded in the paper: HVS filtering followed by
    /// the raw (unstabilized) Universal Image Quality Index.
    pub fn with_raw_uiqi() -> Self {
        HebsDistortion {
            hvs: HvsModel::default(),
            index: QualityIndex::Uiqi,
        }
    }

    /// Returns a copy of the measure using the given quality index.
    pub fn with_index(mut self, index: QualityIndex) -> Self {
        self.index = index;
        self
    }
}

impl DistortionMeasure for HebsDistortion {
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64 {
        let (a, b) = self.hvs.apply_pair(original, transformed);
        let quality = match self.index {
            QualityIndex::Stabilized => structural_similarity(&a, &b),
            QualityIndex::Uiqi => universal_quality_index(&a, &b),
        };
        (1.0 - quality).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        match self.index {
            QualityIndex::Stabilized => "hvs-ssim",
            QualityIndex::Uiqi => "hvs-uiqi",
        }
    }
}

/// SSIM-based distortion `1 − SSIM` (no HVS pre-filter; SSIM already embeds
/// luminance/contrast masking through its stabilization constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructuralDistortion;

impl DistortionMeasure for StructuralDistortion {
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64 {
        (1.0 - structural_similarity(original, transformed)).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "ssim"
    }
}

/// Naïve pixel-difference distortion: RMSE normalized by the full level
/// range. Included as the "what the paper argues against" reference point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PixelDistortion;

impl DistortionMeasure for PixelDistortion {
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64 {
        (root_mean_squared_error(original, transformed) / 255.0).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "rmse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    fn measures() -> Vec<Box<dyn DistortionMeasure>> {
        vec![
            Box::new(HebsDistortion::default()),
            Box::new(HebsDistortion::without_hvs()),
            Box::new(HebsDistortion::with_raw_uiqi()),
            Box::new(StructuralDistortion),
            Box::new(PixelDistortion),
        ]
    }

    #[test]
    fn identical_images_have_zero_distortion() {
        let img = synthetic::still_life(48, 48, 11);
        for measure in measures() {
            let d = measure.distortion(&img, &img);
            assert!(d < 1e-9, "{} gave {d} for identical images", measure.name());
        }
    }

    #[test]
    fn distortion_is_bounded() {
        let img = synthetic::portrait(48, 48, 11);
        let wrecked = img.map(|v| 255 - v);
        for measure in measures() {
            let d = measure.distortion(&img, &wrecked);
            assert!(
                (0.0..=1.0).contains(&d),
                "{} out of range: {d}",
                measure.name()
            );
            assert!(d > 0.05, "{} should flag an inverted image", measure.name());
        }
    }

    #[test]
    fn stronger_degradation_means_more_distortion() {
        let img = synthetic::landscape(64, 64, 11);
        let mild = img.map(|v| v.saturating_add(6));
        let strong = img.map(|v| v / 2);
        for measure in measures() {
            let d_mild = measure.distortion(&img, &mild);
            let d_strong = measure.distortion(&img, &strong);
            assert!(
                d_mild < d_strong,
                "{}: mild {d_mild} not below strong {d_strong}",
                measure.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = measures().iter().map(|m| m.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        // without_hvs shares the implementation but not the configuration;
        // it reports the same name, so expect 3 distinct names among 4.
        assert!(deduped.len() >= 3);
    }

    #[test]
    fn quality_index_selection_changes_name_and_behaviour() {
        let stabilized = HebsDistortion::default();
        let raw = HebsDistortion::with_raw_uiqi();
        assert_eq!(stabilized.name(), "hvs-ssim");
        assert_eq!(raw.name(), "hvs-uiqi");
        assert_eq!(stabilized.with_index(QualityIndex::Uiqi).name(), "hvs-uiqi");
        // On a smooth image pair the raw index saturates (flat-window
        // instability) while the stabilized index stays proportionate.
        let smooth = GrayImage::from_fn(64, 64, |x, y| (60 + x / 8 + y / 8) as u8);
        let compressed = smooth.map(|v| (f64::from(v) * 0.85) as u8);
        let d_raw = raw.distortion(&smooth, &compressed);
        let d_stable = stabilized.distortion(&smooth, &compressed);
        assert!(d_stable <= d_raw + 1e-9);
        assert!(d_stable < 0.5, "stabilized measure saturated: {d_stable}");
    }

    #[test]
    fn default_index_is_stabilized() {
        assert_eq!(QualityIndex::default(), QualityIndex::Stabilized);
        assert_eq!(HebsDistortion::default().index, QualityIndex::Stabilized);
    }

    #[test]
    fn trait_is_object_safe() {
        let measure: &dyn DistortionMeasure = &PixelDistortion;
        let img = GrayImage::filled(8, 8, 10);
        assert_eq!(measure.distortion(&img, &img), 0.0);
    }

    #[test]
    fn hvs_and_plain_uiqi_agree_on_ordering() {
        let img = synthetic::portrait(64, 64, 13);
        let light = img.map(|v| v.saturating_add(5));
        let heavy = img.map(|v| (f64::from(v) * 0.5) as u8);
        let with_hvs = HebsDistortion::default();
        let without = HebsDistortion::without_hvs();
        assert!(with_hvs.distortion(&img, &light) < with_hvs.distortion(&img, &heavy));
        assert!(without.distortion(&img, &light) < without.distortion(&img, &heavy));
    }
}
