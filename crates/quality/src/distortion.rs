//! The unified distortion-measure interface.
//!
//! The HEBS pipeline and the benchmark harness are parameterized over the
//! distortion measure so that the paper's choice (HVS-filtered UIQI) can be
//! compared against plain UIQI, SSIM and RMSE in the ablation experiments.

use std::sync::Arc;

use hebs_imaging::{GrayImage, Histogram};

use crate::contrast::{contrast_distortion, level_map_of_pair};
use crate::hvs::HvsModel;
use crate::mse::{mean_squared_error_from_levels, root_mean_squared_error};
use crate::ssim::structural_similarity;
use crate::uiqi::{global_quality_from_levels, global_quality_index, universal_quality_index};

/// A measure of the distortion between an original and a transformed image.
///
/// Implementations return a value in `[0, 1]`, where 0 means "visually
/// identical" and larger values mean stronger degradation. The HEBS flow
/// compares this value against the user's tolerable distortion `D_max`.
pub trait DistortionMeasure: std::fmt::Debug + Send + Sync {
    /// Computes the distortion between `original` and `transformed`.
    ///
    /// # Panics
    ///
    /// Implementations panic if the images have different dimensions.
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64;

    /// Histogram-domain entry point: the exact distortion of displaying an
    /// image with the given histogram through the per-level map
    /// `level_map` (source level → displayed level).
    ///
    /// Every *global* statistic (mean, variance, covariance, MSE, contrast
    /// fidelity) is exactly computable from the 256-bin histogram because
    /// the displayed level is a deterministic function of the source level
    /// — the HEBS pipeline exploits this to fit in O(levels) instead of
    /// O(pixels). Windowed metrics (SSIM, sliding-window UIQI, anything
    /// behind a spatial HVS filter) cannot be evaluated this way and keep
    /// the default, which returns `None` to request the pixel path.
    ///
    /// Implementations must agree with [`DistortionMeasure::distortion`]
    /// applied to `(img, level_map(img))` to within float summation order
    /// (≤ 1e-9 on realistic frames). The capability decision must depend
    /// only on the measure itself — a given measure must return `Some` for
    /// every input or `None` for every input, never data-dependently: the
    /// pipeline probes capability once per fit and assumes stability (an
    /// unstable measure degrades the search to the pixel path, it does not
    /// break it).
    fn distortion_from_levels(&self, histogram: &Histogram, level_map: &[u8; 256]) -> Option<f64> {
        let _ = (histogram, level_map);
        None
    }

    /// Short human-readable name used in benchmark reports.
    fn name(&self) -> &'static str;
}

/// A shared, dynamically typed [`DistortionMeasure`] handle.
///
/// The pipeline configuration is parameterized over the measure; this
/// wrapper keeps the configuration cloneable (`Arc` bump) while allowing
/// any measure implementation — the paper's windowed HVS metric or one of
/// the histogram-capable global measures — to be plugged in.
#[derive(Clone)]
pub struct SharedMeasure(Arc<dyn DistortionMeasure>);

impl SharedMeasure {
    /// Wraps a measure.
    pub fn new<M: DistortionMeasure + 'static>(measure: M) -> Self {
        SharedMeasure(Arc::new(measure))
    }
}

impl std::fmt::Debug for SharedMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::ops::Deref for SharedMeasure {
    type Target = dyn DistortionMeasure;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl Default for SharedMeasure {
    fn default() -> Self {
        SharedMeasure::new(HebsDistortion::default())
    }
}

/// Which windowed quality index the [`HebsDistortion`] measure compares the
/// HVS-filtered images with.
///
/// The paper's text names the Universal Image Quality Index (reference \[8\]),
/// but the raw UIQI is numerically unstable on near-flat windows (its
/// denominator vanishes), which makes it useless on images smoother than the
/// noisy photographs the authors used. Its stabilized successor — SSIM, the
/// paper's reference \[6\], identical to UIQI apart from the two stabilization
/// constants — is therefore the reproduction's default; the ablation
/// benchmark quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QualityIndex {
    /// Stabilized index (SSIM): robust on smooth regions. Default.
    #[default]
    Stabilized,
    /// The raw Universal Image Quality Index, as named in the paper.
    Uiqi,
}

/// The paper's distortion measure: both images are passed through the
/// human-visual-system model, then compared with a windowed quality index;
/// distortion is `1 − Q`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HebsDistortion {
    /// The HVS pre-filter applied to both images before comparison.
    pub hvs: HvsModel,
    /// The windowed quality index used after HVS filtering.
    pub index: QualityIndex,
}

impl Default for HebsDistortion {
    fn default() -> Self {
        HebsDistortion {
            hvs: HvsModel::default(),
            index: QualityIndex::Stabilized,
        }
    }
}

impl HebsDistortion {
    /// Creates the measure with an explicit HVS model (and the default
    /// stabilized index).
    pub fn new(hvs: HvsModel) -> Self {
        HebsDistortion {
            hvs,
            index: QualityIndex::Stabilized,
        }
    }

    /// The measure without any HVS weighting.
    pub fn without_hvs() -> Self {
        HebsDistortion {
            hvs: HvsModel::identity(),
            index: QualityIndex::Stabilized,
        }
    }

    /// The measure exactly as worded in the paper: HVS filtering followed by
    /// the raw (unstabilized) Universal Image Quality Index.
    pub fn with_raw_uiqi() -> Self {
        HebsDistortion {
            hvs: HvsModel::default(),
            index: QualityIndex::Uiqi,
        }
    }

    /// Returns a copy of the measure using the given quality index.
    pub fn with_index(mut self, index: QualityIndex) -> Self {
        self.index = index;
        self
    }
}

impl DistortionMeasure for HebsDistortion {
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64 {
        let (a, b) = self.hvs.apply_pair(original, transformed);
        let quality = match self.index {
            QualityIndex::Stabilized => structural_similarity(&a, &b),
            QualityIndex::Uiqi => universal_quality_index(&a, &b),
        };
        (1.0 - quality).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        match self.index {
            QualityIndex::Stabilized => "hvs-ssim",
            QualityIndex::Uiqi => "hvs-uiqi",
        }
    }
}

/// SSIM-based distortion `1 − SSIM` (no HVS pre-filter; SSIM already embeds
/// luminance/contrast masking through its stabilization constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructuralDistortion;

impl DistortionMeasure for StructuralDistortion {
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64 {
        (1.0 - structural_similarity(original, transformed)).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "ssim"
    }
}

/// Naïve pixel-difference distortion: RMSE normalized by the full level
/// range. Included as the "what the paper argues against" reference point.
///
/// Exactly computable in the histogram domain, so fits against this
/// measure run in O(levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PixelDistortion;

impl DistortionMeasure for PixelDistortion {
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64 {
        (root_mean_squared_error(original, transformed) / 255.0).clamp(0.0, 1.0)
    }

    fn distortion_from_levels(&self, histogram: &Histogram, level_map: &[u8; 256]) -> Option<f64> {
        let rmse = mean_squared_error_from_levels(histogram, level_map).sqrt();
        Some((rmse / 255.0).clamp(0.0, 1.0))
    }

    fn name(&self) -> &'static str {
        "rmse"
    }
}

/// Global (single-window) UIQI distortion `1 − Q` over whole-image moments.
///
/// Because the index only consumes whole-image means, variances and the
/// covariance, it is exactly computable from the source histogram plus the
/// per-level display map — the flagship measure of the histogram-domain
/// fit path: a fit against it costs O(levels) regardless of frame size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalUiqiDistortion;

impl DistortionMeasure for GlobalUiqiDistortion {
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64 {
        (1.0 - global_quality_index(original, transformed)).clamp(0.0, 1.0)
    }

    fn distortion_from_levels(&self, histogram: &Histogram, level_map: &[u8; 256]) -> Option<f64> {
        Some((1.0 - global_quality_from_levels(histogram, level_map)).clamp(0.0, 1.0))
    }

    fn name(&self) -> &'static str {
        "uiqi-global"
    }
}

/// The CBCS contrast-fidelity distortion (paper reference \[5\]) as a
/// [`DistortionMeasure`]: the population-weighted fraction of adjacent
/// occupied level pairs the transformation collapses.
///
/// Natively a `(histogram, level map)` measure, so the histogram path is
/// its home ground; the pixel path reconstructs the level map from the
/// image pair (valid for the per-level transformations the HEBS driver
/// realizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContrastMeasure;

impl DistortionMeasure for ContrastMeasure {
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64 {
        let histogram = Histogram::of(original);
        let map = level_map_of_pair(original, transformed);
        contrast_distortion(&histogram, &map).clamp(0.0, 1.0)
    }

    fn distortion_from_levels(&self, histogram: &Histogram, level_map: &[u8; 256]) -> Option<f64> {
        Some(contrast_distortion(histogram, level_map).clamp(0.0, 1.0))
    }

    fn name(&self) -> &'static str {
        "contrast"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    fn measures() -> Vec<Box<dyn DistortionMeasure>> {
        vec![
            Box::new(HebsDistortion::default()),
            Box::new(HebsDistortion::without_hvs()),
            Box::new(HebsDistortion::with_raw_uiqi()),
            Box::new(StructuralDistortion),
            Box::new(PixelDistortion),
            Box::new(GlobalUiqiDistortion),
            Box::new(ContrastMeasure),
        ]
    }

    /// The measures whose histogram-domain path must agree exactly with the
    /// pixel path.
    fn histogram_capable() -> Vec<Box<dyn DistortionMeasure>> {
        vec![
            Box::new(PixelDistortion),
            Box::new(GlobalUiqiDistortion),
            Box::new(ContrastMeasure),
        ]
    }

    /// Representative display-style level maps: range compression towards
    /// black composed with backlight dimming and quantization.
    fn display_level_maps() -> Vec<[u8; 256]> {
        let mut maps = Vec::new();
        for (span, beta) in [(256u32, 1.0f64), (220, 0.86), (128, 0.50), (60, 0.23)] {
            let mut map = [0u8; 256];
            for (p, e) in map.iter_mut().enumerate() {
                let compressed = (p as f64 / 255.0 * (span - 1) as f64).round();
                *e = (beta * compressed).round().clamp(0.0, 255.0) as u8;
            }
            maps.push(map);
        }
        // A collapsing staircase (the contrast measure's worst case).
        let mut stairs = [0u8; 256];
        for (p, e) in stairs.iter_mut().enumerate() {
            *e = ((p / 4) * 4) as u8;
        }
        maps.push(stairs);
        maps
    }

    #[test]
    fn histogram_and_pixel_paths_agree_on_the_synthetic_suite() {
        let suite = hebs_imaging::SipiSuite::with_size(48);
        for measure in histogram_capable() {
            for map in display_level_maps() {
                for (id, image) in suite.iter() {
                    let transformed = image.map(|v| map[v as usize]);
                    let pixel = measure.distortion(image, &transformed);
                    let hist = measure
                        .distortion_from_levels(&Histogram::of(image), &map)
                        .expect("measure is histogram-capable");
                    assert!(
                        (pixel - hist).abs() <= 1e-9,
                        "{} on {}: pixel {pixel} vs histogram {hist}",
                        measure.name(),
                        id.name()
                    );
                }
            }
        }
    }

    #[test]
    fn windowed_measures_decline_the_histogram_path() {
        let hist = Histogram::of(&synthetic::portrait(16, 16, 1));
        let identity: [u8; 256] = std::array::from_fn(|i| i as u8);
        assert!(HebsDistortion::default()
            .distortion_from_levels(&hist, &identity)
            .is_none());
        assert!(StructuralDistortion
            .distortion_from_levels(&hist, &identity)
            .is_none());
    }

    #[test]
    fn shared_measure_delegates_and_clones_cheaply() {
        let shared = SharedMeasure::new(GlobalUiqiDistortion);
        let clone = shared.clone();
        let img = synthetic::still_life(32, 32, 14);
        let transformed = img.map(|v| v / 2);
        assert_eq!(
            shared.distortion(&img, &transformed),
            clone.distortion(&img, &transformed)
        );
        assert_eq!(shared.name(), "uiqi-global");
        assert_eq!(SharedMeasure::default().name(), "hvs-ssim");
        assert!(format!("{shared:?}").contains("GlobalUiqiDistortion"));
    }

    #[test]
    fn identical_images_have_zero_distortion() {
        let img = synthetic::still_life(48, 48, 11);
        for measure in measures() {
            let d = measure.distortion(&img, &img);
            assert!(d < 1e-9, "{} gave {d} for identical images", measure.name());
        }
    }

    #[test]
    fn distortion_is_bounded() {
        let img = synthetic::portrait(48, 48, 11);
        let wrecked = img.map(|v| 255 - v);
        for measure in measures() {
            let d = measure.distortion(&img, &wrecked);
            assert!(
                (0.0..=1.0).contains(&d),
                "{} out of range: {d}",
                measure.name()
            );
            assert!(d > 0.05, "{} should flag an inverted image", measure.name());
        }
    }

    #[test]
    fn stronger_degradation_means_more_distortion() {
        let img = synthetic::landscape(64, 64, 11);
        let mild = img.map(|v| v.saturating_add(6));
        let strong = img.map(|v| v / 2);
        for measure in measures() {
            let d_mild = measure.distortion(&img, &mild);
            let d_strong = measure.distortion(&img, &strong);
            assert!(
                d_mild < d_strong,
                "{}: mild {d_mild} not below strong {d_strong}",
                measure.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = measures().iter().map(|m| m.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        // without_hvs shares the implementation but not the configuration;
        // it reports the same name, so expect 3 distinct names among 4.
        assert!(deduped.len() >= 3);
    }

    #[test]
    fn quality_index_selection_changes_name_and_behaviour() {
        let stabilized = HebsDistortion::default();
        let raw = HebsDistortion::with_raw_uiqi();
        assert_eq!(stabilized.name(), "hvs-ssim");
        assert_eq!(raw.name(), "hvs-uiqi");
        assert_eq!(stabilized.with_index(QualityIndex::Uiqi).name(), "hvs-uiqi");
        // On a smooth image pair the raw index saturates (flat-window
        // instability) while the stabilized index stays proportionate.
        let smooth = GrayImage::from_fn(64, 64, |x, y| (60 + x / 8 + y / 8) as u8);
        let compressed = smooth.map(|v| (f64::from(v) * 0.85) as u8);
        let d_raw = raw.distortion(&smooth, &compressed);
        let d_stable = stabilized.distortion(&smooth, &compressed);
        assert!(d_stable <= d_raw + 1e-9);
        assert!(d_stable < 0.5, "stabilized measure saturated: {d_stable}");
    }

    #[test]
    fn default_index_is_stabilized() {
        assert_eq!(QualityIndex::default(), QualityIndex::Stabilized);
        assert_eq!(HebsDistortion::default().index, QualityIndex::Stabilized);
    }

    #[test]
    fn trait_is_object_safe() {
        let measure: &dyn DistortionMeasure = &PixelDistortion;
        let img = GrayImage::filled(8, 8, 10);
        assert_eq!(measure.distortion(&img, &img), 0.0);
    }

    #[test]
    fn hvs_and_plain_uiqi_agree_on_ordering() {
        let img = synthetic::portrait(64, 64, 13);
        let light = img.map(|v| v.saturating_add(5));
        let heavy = img.map(|v| (f64::from(v) * 0.5) as u8);
        let with_hvs = HebsDistortion::default();
        let without = HebsDistortion::without_hvs();
        assert!(with_hvs.distortion(&img, &light) < with_hvs.distortion(&img, &heavy));
        assert!(without.distortion(&img, &light) < without.distortion(&img, &heavy));
    }
}
