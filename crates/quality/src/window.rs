//! Sliding-window statistics via summed-area tables.
//!
//! Both the Universal Image Quality Index and SSIM are computed over small
//! sliding windows (8×8 by default) and averaged. Computing each window's
//! mean, variance and covariance naively costs `O(W·H·w²)`; with integral
//! images (summed-area tables) it costs `O(W·H)` regardless of the window
//! size, which keeps the distortion-characterization sweeps fast.

use hebs_imaging::GrayImage;

/// Summed-area tables over one image pair, ready to answer per-window
/// mean / variance / covariance queries in constant time.
///
/// The two images must have identical dimensions.
#[derive(Debug, Clone)]
pub struct WindowStats {
    width: usize,
    height: usize,
    sum_a: Vec<f64>,
    sum_b: Vec<f64>,
    sum_aa: Vec<f64>,
    sum_bb: Vec<f64>,
    sum_ab: Vec<f64>,
}

/// Per-window first and second order statistics of an image pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowMoments {
    /// Mean of the first image inside the window.
    pub mean_a: f64,
    /// Mean of the second image inside the window.
    pub mean_b: f64,
    /// Population variance of the first image inside the window.
    pub var_a: f64,
    /// Population variance of the second image inside the window.
    pub var_b: f64,
    /// Population covariance of the two images inside the window.
    pub covariance: f64,
    /// Number of pixels inside the window.
    pub count: usize,
}

impl WindowStats {
    /// Builds the tables for an image pair.
    ///
    /// # Panics
    ///
    /// Panics if the two images have different dimensions.
    pub fn new(a: &GrayImage, b: &GrayImage) -> Self {
        assert_eq!(a.width(), b.width(), "images must have identical widths");
        assert_eq!(a.height(), b.height(), "images must have identical heights");
        let width = a.width() as usize;
        let height = a.height() as usize;
        let stride = width + 1;
        let table_len = stride * (height + 1);
        let mut sum_a = vec![0.0; table_len];
        let mut sum_b = vec![0.0; table_len];
        let mut sum_aa = vec![0.0; table_len];
        let mut sum_bb = vec![0.0; table_len];
        let mut sum_ab = vec![0.0; table_len];
        let raw_a = a.as_raw();
        let raw_b = b.as_raw();
        for y in 0..height {
            for x in 0..width {
                let va = f64::from(raw_a[y * width + x]);
                let vb = f64::from(raw_b[y * width + x]);
                let here = (y + 1) * stride + (x + 1);
                let up = y * stride + (x + 1);
                let left = (y + 1) * stride + x;
                let up_left = y * stride + x;
                sum_a[here] = va + sum_a[up] + sum_a[left] - sum_a[up_left];
                sum_b[here] = vb + sum_b[up] + sum_b[left] - sum_b[up_left];
                sum_aa[here] = va * va + sum_aa[up] + sum_aa[left] - sum_aa[up_left];
                sum_bb[here] = vb * vb + sum_bb[up] + sum_bb[left] - sum_bb[up_left];
                sum_ab[here] = va * vb + sum_ab[up] + sum_ab[left] - sum_ab[up_left];
            }
        }
        WindowStats {
            width,
            height,
            sum_a,
            sum_b,
            sum_aa,
            sum_bb,
            sum_ab,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Statistics of the window whose top-left corner is `(x, y)` and which
    /// spans `size × size` pixels (clipped to the image).
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` lies outside the image or `size` is 0.
    pub fn moments(&self, x: usize, y: usize, size: usize) -> WindowMoments {
        assert!(size > 0, "window size must be nonzero");
        assert!(
            x < self.width && y < self.height,
            "window origin ({x}, {y}) outside of {}x{} image",
            self.width,
            self.height
        );
        let x1 = (x + size).min(self.width);
        let y1 = (y + size).min(self.height);
        let count = (x1 - x) * (y1 - y);
        let n = count as f64;
        let rect = |table: &[f64]| -> f64 {
            let stride = self.width + 1;
            table[y1 * stride + x1] - table[y * stride + x1] - table[y1 * stride + x]
                + table[y * stride + x]
        };
        let sa = rect(&self.sum_a);
        let sb = rect(&self.sum_b);
        let saa = rect(&self.sum_aa);
        let sbb = rect(&self.sum_bb);
        let sab = rect(&self.sum_ab);
        let mean_a = sa / n;
        let mean_b = sb / n;
        WindowMoments {
            mean_a,
            mean_b,
            var_a: (saa / n - mean_a * mean_a).max(0.0),
            var_b: (sbb / n - mean_b * mean_b).max(0.0),
            covariance: sab / n - mean_a * mean_b,
            count,
        }
    }

    /// Iterates over all windows of the given size with the given stride,
    /// calling `f` with the moments of each.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `stride` is 0.
    pub fn for_each_window<F>(&self, size: usize, stride: usize, mut f: F)
    where
        F: FnMut(WindowMoments),
    {
        assert!(size > 0 && stride > 0, "size and stride must be nonzero");
        let mut y = 0;
        while y < self.height {
            let mut x = 0;
            while x < self.width {
                f(self.moments(x, y, size));
                x += stride;
            }
            y += stride;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::covariance;

    fn naive_moments(
        a: &GrayImage,
        b: &GrayImage,
        x: usize,
        y: usize,
        size: usize,
    ) -> WindowMoments {
        let mut values_a = Vec::new();
        let mut values_b = Vec::new();
        for yy in y..(y + size).min(a.height() as usize) {
            for xx in x..(x + size).min(a.width() as usize) {
                values_a.push(f64::from(a.get(xx as u32, yy as u32).unwrap()));
                values_b.push(f64::from(b.get(xx as u32, yy as u32).unwrap()));
            }
        }
        let n = values_a.len() as f64;
        let mean_a = values_a.iter().sum::<f64>() / n;
        let mean_b = values_b.iter().sum::<f64>() / n;
        let var_a = values_a.iter().map(|v| (v - mean_a).powi(2)).sum::<f64>() / n;
        let var_b = values_b.iter().map(|v| (v - mean_b).powi(2)).sum::<f64>() / n;
        let cov = values_a
            .iter()
            .zip(&values_b)
            .map(|(va, vb)| (va - mean_a) * (vb - mean_b))
            .sum::<f64>()
            / n;
        WindowMoments {
            mean_a,
            mean_b,
            var_a,
            var_b,
            covariance: cov,
            count: values_a.len(),
        }
    }

    #[test]
    fn moments_match_naive_computation() {
        let a = GrayImage::from_fn(23, 17, |x, y| ((x * 7 + y * 13) % 256) as u8);
        let b = GrayImage::from_fn(23, 17, |x, y| ((x * 3 + y * 29 + 40) % 256) as u8);
        let stats = WindowStats::new(&a, &b);
        for &(x, y, size) in &[(0, 0, 8), (5, 3, 8), (20, 14, 8), (0, 0, 23), (10, 10, 4)] {
            let fast = stats.moments(x, y, size);
            let slow = naive_moments(&a, &b, x, y, size);
            assert_eq!(fast.count, slow.count);
            assert!((fast.mean_a - slow.mean_a).abs() < 1e-9);
            assert!((fast.mean_b - slow.mean_b).abs() < 1e-9);
            assert!((fast.var_a - slow.var_a).abs() < 1e-6);
            assert!((fast.var_b - slow.var_b).abs() < 1e-6);
            assert!((fast.covariance - slow.covariance).abs() < 1e-6);
        }
    }

    #[test]
    fn full_image_window_matches_global_covariance() {
        let a = GrayImage::from_fn(16, 16, |x, y| ((x * x + y) % 256) as u8);
        let b = a.map(|v| v.saturating_add(30));
        let stats = WindowStats::new(&a, &b);
        let m = stats.moments(0, 0, 16);
        assert!((m.covariance - covariance(&a, &b)).abs() < 1e-6);
    }

    #[test]
    fn window_clipping_at_the_border() {
        let a = GrayImage::filled(10, 10, 50);
        let b = GrayImage::filled(10, 10, 60);
        let stats = WindowStats::new(&a, &b);
        let m = stats.moments(8, 8, 8);
        assert_eq!(m.count, 4);
        assert_eq!(m.mean_a, 50.0);
        assert_eq!(m.mean_b, 60.0);
        assert_eq!(m.var_a, 0.0);
    }

    #[test]
    fn for_each_window_covers_the_image() {
        let a = GrayImage::filled(20, 12, 1);
        let stats = WindowStats::new(&a, &a);
        let mut count = 0;
        let mut pixels = 0;
        stats.for_each_window(8, 8, |m| {
            count += 1;
            pixels += m.count;
        });
        // ceil(20/8) * ceil(12/8) = 3 * 2 = 6 windows covering all 240 pixels.
        assert_eq!(count, 6);
        assert_eq!(pixels, 240);
    }

    #[test]
    #[should_panic(expected = "identical widths")]
    fn mismatched_sizes_panic() {
        let a = GrayImage::filled(4, 4, 0);
        let b = GrayImage::filled(5, 4, 0);
        let _ = WindowStats::new(&a, &b);
    }

    #[test]
    #[should_panic(expected = "window size must be nonzero")]
    fn zero_window_panics() {
        let a = GrayImage::filled(4, 4, 0);
        let stats = WindowStats::new(&a, &a);
        let _ = stats.moments(0, 0, 0);
    }
}
