//! Distortion measures used by the prior-work baselines.
//!
//! * Reference \[4\] of the paper (DLS, Chang et al.) evaluates distortion as
//!   the **fraction of saturated pixels** — pixels pushed outside the
//!   representable range by the compensation and clipped.
//! * Reference \[5\] (CBCS, Cheng & Pedram) uses **contrast fidelity**: the
//!   fraction of pixel-value levels whose contrast (level-to-level distance)
//!   is preserved by the transformation.
//!
//! HEBS argues both are overestimates of perceived distortion; the
//! reproduction implements them so the baseline-comparison experiment can
//! use each policy's native metric as well as the common UIQI measure.

use hebs_imaging::{GrayImage, Histogram};

/// Fraction of pixels of `original` that a transformation maps to a clipped
/// (fully black or fully white) level in `transformed` even though they were
/// not at the extremes originally.
///
/// This is the distortion notion of the DLS baseline: a pixel "saturates"
/// when compensation pushes it beyond the representable range and the
/// information it carried is lost.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn saturated_pixel_fraction(original: &GrayImage, transformed: &GrayImage) -> f64 {
    assert_eq!(
        (original.width(), original.height()),
        (transformed.width(), transformed.height()),
        "images must have identical dimensions"
    );
    let n = original.pixel_count() as f64;
    let saturated = original
        .pixels()
        .zip(transformed.pixels())
        .filter(|&(before, after)| (after == 255 && before != 255) || (after == 0 && before != 0))
        .count();
    saturated as f64 / n
}

/// Contrast fidelity of a level mapping with respect to an image histogram.
///
/// For every pair of adjacent occupied levels in the original histogram, the
/// contrast between them is considered *preserved* when the mapping keeps
/// them at distinct output levels. The fidelity is the pixel-population
/// weighted fraction of preserved levels — 1.0 when every occupied level
/// remains distinguishable, lower when the transformation collapses levels.
///
/// This captures the CBCS notion that information is lost exactly where the
/// transformation flattens the grayscale mapping.
pub fn contrast_fidelity(histogram: &Histogram, lut: &[u8; 256]) -> f64 {
    let total = histogram.total();
    if total == 0 {
        return 1.0;
    }
    // Occupied levels in ascending order.
    let occupied: Vec<usize> = (0..256).filter(|&l| histogram.count(l as u8) > 0).collect();
    if occupied.len() <= 1 {
        return 1.0;
    }
    let mut preserved_population = 0u64;
    let mut considered_population = 0u64;
    for pair in occupied.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        // Weight each adjacent-level pair by the pixels that carry it.
        let weight = histogram.count(lo as u8) + histogram.count(hi as u8);
        considered_population += weight;
        if lut[hi] > lut[lo] {
            preserved_population += weight;
        }
    }
    if considered_population == 0 {
        1.0
    } else {
        preserved_population as f64 / considered_population as f64
    }
}

/// Distortion according to the CBCS baseline: `1 − contrast_fidelity`.
pub fn contrast_distortion(histogram: &Histogram, lut: &[u8; 256]) -> f64 {
    1.0 - contrast_fidelity(histogram, lut)
}

/// Reconstructs the per-level map a deterministic transformation applied to
/// `original` by reading it off the image pair: wherever the original holds
/// level `p`, the map records the transformed level at the same position.
/// Levels absent from `original` keep an identity entry (they carry no
/// population, so histogram-weighted measures ignore them).
///
/// This is the pixel-domain adapter for measures that are natively defined
/// on `(histogram, level map)` pairs, like [`contrast_distortion`]. The
/// transformation is assumed to be per-level (as everything the HEBS driver
/// realizes is); for a non-deterministic pair the last occurrence wins.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn level_map_of_pair(original: &GrayImage, transformed: &GrayImage) -> [u8; 256] {
    assert_eq!(
        (original.width(), original.height()),
        (transformed.width(), transformed.height()),
        "images must have identical dimensions"
    );
    let mut map = [0u8; 256];
    for (i, e) in map.iter_mut().enumerate() {
        *e = i as u8;
    }
    for (before, after) in original.pixels().zip(transformed.pixels()) {
        map[before as usize] = after;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    fn identity_lut() -> [u8; 256] {
        let mut lut = [0u8; 256];
        for (i, e) in lut.iter_mut().enumerate() {
            *e = i as u8;
        }
        lut
    }

    #[test]
    fn no_saturation_for_identity() {
        let img = synthetic::portrait(32, 32, 1);
        assert_eq!(saturated_pixel_fraction(&img, &img), 0.0);
    }

    #[test]
    fn saturation_counts_clipped_pixels() {
        let img = GrayImage::from_fn(4, 1, |x, _| [10u8, 100, 200, 255][x as usize]);
        // Shift everything up by 100 with clipping: 200 and 255 both end at
        // 255, but 255 was already white so only one new saturation.
        let shifted = img.map(|v| v.saturating_add(100));
        assert!((saturated_pixel_fraction(&img, &shifted) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn saturation_counts_black_crush() {
        let img = GrayImage::from_fn(4, 1, |x, _| [0u8, 30, 100, 200][x as usize]);
        let crushed = img.map(|v| v.saturating_sub(50));
        // 30 → 0 is a new black crush; 0 was already black.
        assert!((saturated_pixel_fraction(&img, &crushed) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn identity_lut_has_full_fidelity() {
        let img = synthetic::still_life(48, 48, 4);
        let hist = Histogram::of(&img);
        assert_eq!(contrast_fidelity(&hist, &identity_lut()), 1.0);
        assert_eq!(contrast_distortion(&hist, &identity_lut()), 0.0);
    }

    #[test]
    fn constant_lut_has_zero_fidelity() {
        let img = synthetic::still_life(48, 48, 4);
        let hist = Histogram::of(&img);
        let lut = [128u8; 256];
        assert_eq!(contrast_fidelity(&hist, &lut), 0.0);
        assert_eq!(contrast_distortion(&hist, &lut), 1.0);
    }

    #[test]
    fn partial_collapse_gives_intermediate_fidelity() {
        // Image with 4 equally populated levels.
        let img = GrayImage::from_fn(4, 4, |x, _| [10u8, 20, 30, 40][x as usize]);
        let hist = Histogram::of(&img);
        // LUT collapses 30 and 40 together but keeps 10/20/30 distinct.
        let mut lut = identity_lut();
        lut[40] = lut[30];
        let fidelity = contrast_fidelity(&hist, &lut);
        assert!(fidelity > 0.5 && fidelity < 1.0);
    }

    #[test]
    fn degenerate_histograms() {
        let empty = Histogram::new();
        assert_eq!(contrast_fidelity(&empty, &identity_lut()), 1.0);
        let single = Histogram::of(&GrayImage::filled(4, 4, 77));
        assert_eq!(contrast_fidelity(&single, &identity_lut()), 1.0);
    }

    #[test]
    fn level_map_recovered_from_a_pair_round_trips() {
        let img = synthetic::landscape(32, 32, 5);
        let mut lut = identity_lut();
        for (i, e) in lut.iter_mut().enumerate() {
            *e = ((i * 2) / 3 + 10) as u8;
        }
        let transformed = img.map(|v| lut[v as usize]);
        let recovered = level_map_of_pair(&img, &transformed);
        let hist = Histogram::of(&img);
        for level in 0..256usize {
            if hist.count(level as u8) > 0 {
                assert_eq!(recovered[level], lut[level], "level {level}");
            }
        }
        assert_eq!(
            contrast_distortion(&hist, &recovered),
            contrast_distortion(&hist, &lut),
            "unoccupied levels must not change the measure"
        );
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn saturation_panics_on_size_mismatch() {
        let a = GrayImage::filled(4, 4, 0);
        let b = GrayImage::filled(4, 5, 0);
        let _ = saturated_pixel_fraction(&a, &b);
    }
}
