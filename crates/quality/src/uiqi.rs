//! Universal Image Quality Index (Wang & Bovik, IEEE SPL 2002).
//!
//! This is the distortion measure the HEBS paper adopts for its distortion
//! characteristic curve (Section 5.1c, reference \[8\]). For an image pair
//! `(x, y)` the index over one window is
//!
//! ```text
//! Q = (4 · σ_xy · x̄ · ȳ) / ((σ_x² + σ_y²) · (x̄² + ȳ²))
//! ```
//!
//! which factors into loss-of-correlation, luminance-distortion and
//! contrast-distortion terms, each in `[−1, 1]` with 1 meaning "identical".
//! The whole-image index is the mean of the window indices over a sliding
//! window (8×8 in the original paper).

use hebs_imaging::{GrayImage, Histogram};

use crate::window::WindowStats;

/// Default sliding-window size used by the original UIQI paper.
pub const DEFAULT_WINDOW: usize = 8;

/// Computes the Universal Image Quality Index with the default 8×8 window
/// and a stride of 1 window (non-overlapping windows).
///
/// Returns a value in `[−1, 1]`; 1 means the images are identical.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn universal_quality_index(a: &GrayImage, b: &GrayImage) -> f64 {
    universal_quality_index_windowed(a, b, DEFAULT_WINDOW, DEFAULT_WINDOW)
}

/// Computes the UIQI with an explicit window size and stride.
///
/// A stride equal to the window size (the default) uses non-overlapping
/// windows, which is faster; a stride of 1 reproduces the dense sliding
/// window of the original formulation.
///
/// # Panics
///
/// Panics if the images have different dimensions, or if `window` or
/// `stride` is 0.
pub fn universal_quality_index_windowed(
    a: &GrayImage,
    b: &GrayImage,
    window: usize,
    stride: usize,
) -> f64 {
    let stats = WindowStats::new(a, b);
    let mut sum = 0.0;
    let mut count = 0usize;
    stats.for_each_window(window, stride, |m| {
        sum += window_quality(m.mean_a, m.mean_b, m.var_a, m.var_b, m.covariance);
        count += 1;
    });
    if count == 0 {
        1.0
    } else {
        sum / count as f64
    }
}

/// Computes the *global* UIQI: the quality index of the whole image treated
/// as one window (first and second moments over every pixel).
///
/// Unlike the windowed index, the global index depends only on whole-image
/// means, variances and the covariance — statistics that are exactly
/// computable from the source histogram when the transformation is a
/// per-level map (see [`global_quality_from_levels`]). This makes it the
/// natural measure for the histogram-domain fit path.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn global_quality_index(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "images must have identical dimensions"
    );
    let n = a.pixel_count() as f64;
    if n == 0.0 {
        return 1.0;
    }
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (va, vb) in a.pixels().zip(b.pixels()) {
        let va = f64::from(va);
        let vb = f64::from(vb);
        sa += va;
        sb += vb;
        saa += va * va;
        sbb += vb * vb;
        sab += va * vb;
    }
    let mean_a = sa / n;
    let mean_b = sb / n;
    window_quality(
        mean_a,
        mean_b,
        (saa / n - mean_a * mean_a).max(0.0),
        (sbb / n - mean_b * mean_b).max(0.0),
        sab / n - mean_a * mean_b,
    )
}

/// Computes the global UIQI between an image and its per-level transform
/// entirely from the histogram: pixels with source level `p` display as
/// `level_map[p]`, so every whole-image moment is a sum over 256 levels.
///
/// Agrees with [`global_quality_index`]`(img, level_map(img))` to within
/// float summation order, in O(levels) instead of O(pixels). An empty
/// histogram reports 1 (nothing differs).
pub fn global_quality_from_levels(histogram: &Histogram, level_map: &[u8; 256]) -> f64 {
    let total = histogram.total();
    if total == 0 {
        return 1.0;
    }
    let n = total as f64;
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (level, &count) in histogram.counts().iter().enumerate() {
        if count == 0 {
            continue;
        }
        let c = count as f64;
        let va = level as f64;
        let vb = f64::from(level_map[level]);
        sa += c * va;
        sb += c * vb;
        saa += c * va * va;
        sbb += c * vb * vb;
        sab += c * va * vb;
    }
    let mean_a = sa / n;
    let mean_b = sb / n;
    window_quality(
        mean_a,
        mean_b,
        (saa / n - mean_a * mean_a).max(0.0),
        (sbb / n - mean_b * mean_b).max(0.0),
        sab / n - mean_a * mean_b,
    )
}

/// The UIQI of a single window given its moments.
///
/// Degenerate windows are handled as in the reference implementation:
/// if both denominator factors vanish (both images constant and both black)
/// the windows are identical in every respect and the quality is 1; if only
/// the contrast factor vanishes (both images constant) quality reduces to the
/// luminance term.
fn window_quality(mean_a: f64, mean_b: f64, var_a: f64, var_b: f64, cov: f64) -> f64 {
    let luminance_den = mean_a * mean_a + mean_b * mean_b;
    let contrast_den = var_a + var_b;
    if contrast_den == 0.0 && luminance_den == 0.0 {
        return 1.0;
    }
    if contrast_den == 0.0 {
        // Both windows are flat: quality is the luminance similarity.
        return 2.0 * mean_a * mean_b / luminance_den;
    }
    if luminance_den == 0.0 {
        // Zero-mean windows (cannot happen for u8 images unless both are
        // black, which the first branch caught), fall back to correlation.
        return 2.0 * cov / contrast_den;
    }
    (4.0 * cov * mean_a * mean_b) / (contrast_den * luminance_den)
}

/// Converts a quality index `Q ∈ [−1, 1]` into a distortion fraction in
/// `[0, 1]`, with 0 for identical images.
///
/// The paper reports distortion percentages (e.g. "5 % distortion"); this is
/// the mapping used throughout the reproduction: `D = (1 − Q) / 2` would map
/// anti-correlated images to 1, but because backlight-scaled images are
/// always positively correlated with the original the simpler `D = 1 − Q`
/// (clamped) is used, matching the paper's small percentages for mild
/// transformations.
pub fn distortion_from_quality(quality: f64) -> f64 {
    (1.0 - quality).clamp(0.0, 1.0)
}

/// Convenience: UIQI-based distortion `1 − Q` between two images.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn uiqi_distortion(a: &GrayImage, b: &GrayImage) -> f64 {
    distortion_from_quality(universal_quality_index(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    fn structured_image() -> GrayImage {
        synthetic::still_life(64, 64, 77)
    }

    #[test]
    fn identical_images_have_quality_one() {
        let img = structured_image();
        let q = universal_quality_index(&img, &img);
        assert!((q - 1.0).abs() < 1e-9);
        assert!(uiqi_distortion(&img, &img) < 1e-9);
    }

    #[test]
    fn quality_decreases_with_stronger_degradation() {
        let img = structured_image();
        let mild = img.map(|v| v.saturating_add(10));
        let strong = img.map(|v| v / 2);
        let q_mild = universal_quality_index(&img, &mild);
        let q_strong = universal_quality_index(&img, &strong);
        assert!(q_mild > q_strong, "mild {q_mild} vs strong {q_strong}");
        assert!(q_mild < 1.0);
    }

    #[test]
    fn quality_is_symmetric() {
        let a = structured_image();
        let b = a.map(|v| (f64::from(v) * 0.8) as u8);
        let q_ab = universal_quality_index(&a, &b);
        let q_ba = universal_quality_index(&b, &a);
        assert!((q_ab - q_ba).abs() < 1e-12);
    }

    #[test]
    fn quality_bounded_by_one() {
        let a = structured_image();
        for factor in [0.3, 0.6, 0.9, 1.0] {
            let b = a.map(|v| (f64::from(v) * factor) as u8);
            let q = universal_quality_index(&a, &b);
            assert!(
                q <= 1.0 + 1e-12,
                "quality {q} exceeds 1 for factor {factor}"
            );
        }
    }

    #[test]
    fn inverted_image_has_low_quality() {
        let a = structured_image();
        let inverted = a.map(|v| 255 - v);
        let q = universal_quality_index(&a, &inverted);
        assert!(q < 0.2, "inverted image should have low quality, got {q}");
    }

    #[test]
    fn flat_identical_windows_are_perfect() {
        let a = GrayImage::filled(16, 16, 80);
        assert!((universal_quality_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_windows_with_different_levels_are_penalized() {
        let a = GrayImage::filled(16, 16, 80);
        let b = GrayImage::filled(16, 16, 160);
        let q = universal_quality_index(&a, &b);
        // Luminance term: 2·80·160 / (80² + 160²) = 0.8.
        assert!((q - 0.8).abs() < 1e-9);
    }

    #[test]
    fn both_black_images_are_identical() {
        let a = GrayImage::filled(8, 8, 0);
        assert_eq!(universal_quality_index(&a, &a), 1.0);
    }

    #[test]
    fn windowed_variant_with_dense_stride_is_similar() {
        let a = structured_image();
        let b = a.map(|v| v.saturating_sub(20));
        let sparse = universal_quality_index_windowed(&a, &b, 8, 8);
        let dense = universal_quality_index_windowed(&a, &b, 8, 2);
        assert!((sparse - dense).abs() < 0.1);
    }

    #[test]
    fn global_quality_pixel_and_level_paths_agree() {
        let img = structured_image();
        let mut level_map = [0u8; 256];
        for (i, e) in level_map.iter_mut().enumerate() {
            *e = ((i * 3) / 4) as u8;
        }
        let transformed = img.map(|v| level_map[v as usize]);
        let pixel = global_quality_index(&img, &transformed);
        let hist = global_quality_from_levels(&Histogram::of(&img), &level_map);
        assert!((pixel - hist).abs() < 1e-9, "pixel {pixel} vs hist {hist}");
        assert!((global_quality_index(&img, &img) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn global_quality_degenerate_inputs() {
        let mut identity = [0u8; 256];
        for (i, e) in identity.iter_mut().enumerate() {
            *e = i as u8;
        }
        assert_eq!(
            global_quality_from_levels(&Histogram::new(), &identity),
            1.0
        );
        let flat = GrayImage::filled(8, 8, 70);
        let hist = Histogram::of(&flat);
        assert!((global_quality_from_levels(&hist, &identity) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distortion_mapping() {
        assert_eq!(distortion_from_quality(1.0), 0.0);
        assert_eq!(distortion_from_quality(0.9), 0.09999999999999998);
        assert_eq!(distortion_from_quality(-1.0), 1.0);
    }
}
