//! Structural Similarity index (Wang, Bovik, Sheikh, Simoncelli 2004).
//!
//! SSIM is the stabilized successor of the Universal Image Quality Index
//! (paper reference \[6\]). The HEBS paper lists it among the "future work"
//! distortion measures; the reproduction ships it so the ablation benchmark
//! can compare the two.

use hebs_imaging::GrayImage;

use crate::window::WindowStats;

/// Default window size, matching the common 8×8 block implementation.
pub const DEFAULT_WINDOW: usize = 8;

/// Stabilization constant `C1 = (K1 · L)²` with `K1 = 0.01`, `L = 255`.
pub const C1: f64 = 6.5025;
/// Stabilization constant `C2 = (K2 · L)²` with `K2 = 0.03`, `L = 255`.
pub const C2: f64 = 58.5225;

/// Computes the mean SSIM over non-overlapping 8×8 windows.
///
/// Returns a value in `[−1, 1]`; 1 means the images are identical.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn structural_similarity(a: &GrayImage, b: &GrayImage) -> f64 {
    structural_similarity_windowed(a, b, DEFAULT_WINDOW, DEFAULT_WINDOW)
}

/// Computes the mean SSIM with an explicit window size and stride.
///
/// # Panics
///
/// Panics if the images have different dimensions, or if `window` or
/// `stride` is 0.
pub fn structural_similarity_windowed(
    a: &GrayImage,
    b: &GrayImage,
    window: usize,
    stride: usize,
) -> f64 {
    let stats = WindowStats::new(a, b);
    let mut sum = 0.0;
    let mut count = 0usize;
    stats.for_each_window(window, stride, |m| {
        let numerator = (2.0 * m.mean_a * m.mean_b + C1) * (2.0 * m.covariance + C2);
        let denominator =
            (m.mean_a * m.mean_a + m.mean_b * m.mean_b + C1) * (m.var_a + m.var_b + C2);
        sum += numerator / denominator;
        count += 1;
    });
    if count == 0 {
        1.0
    } else {
        sum / count as f64
    }
}

/// SSIM-based distortion `1 − SSIM`, clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn ssim_distortion(a: &GrayImage, b: &GrayImage) -> f64 {
    (1.0 - structural_similarity(a, b)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    fn structured_image() -> GrayImage {
        synthetic::portrait(64, 64, 9)
    }

    #[test]
    fn identical_images_have_ssim_one() {
        let img = structured_image();
        assert!((structural_similarity(&img, &img) - 1.0).abs() < 1e-9);
        assert!(ssim_distortion(&img, &img) < 1e-9);
    }

    #[test]
    fn ssim_decreases_with_degradation() {
        let img = structured_image();
        let mild = img.map(|v| v.saturating_add(8));
        let strong = img.map(|v| v / 3);
        let s_mild = structural_similarity(&img, &mild);
        let s_strong = structural_similarity(&img, &strong);
        assert!(s_mild > s_strong);
        assert!(s_strong < 0.9);
    }

    #[test]
    fn ssim_is_symmetric_and_bounded() {
        let a = structured_image();
        let b = a.map(|v| (f64::from(v) * 0.7 + 10.0) as u8);
        let s_ab = structural_similarity(&a, &b);
        let s_ba = structural_similarity(&b, &a);
        assert!((s_ab - s_ba).abs() < 1e-12);
        assert!(s_ab <= 1.0 + 1e-12);
        assert!(s_ab >= -1.0 - 1e-12);
    }

    #[test]
    fn flat_images_do_not_divide_by_zero() {
        let a = GrayImage::filled(16, 16, 0);
        let b = GrayImage::filled(16, 16, 0);
        assert!((structural_similarity(&a, &b) - 1.0).abs() < 1e-9);
        let c = GrayImage::filled(16, 16, 255);
        assert!(structural_similarity(&a, &c) < 0.01);
    }

    #[test]
    fn ssim_tracks_uiqi_ordering() {
        // On the same degradations, SSIM and UIQI should order image pairs
        // the same way (they measure the same three factors).
        use crate::uiqi::universal_quality_index;
        let img = structured_image();
        let light = img.map(|v| v.saturating_add(5));
        let heavy = img.map(|v| v / 2);
        let ssim_order = structural_similarity(&img, &light) > structural_similarity(&img, &heavy);
        let uiqi_order =
            universal_quality_index(&img, &light) > universal_quality_index(&img, &heavy);
        assert_eq!(ssim_order, uiqi_order);
    }
}
