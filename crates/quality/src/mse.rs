//! Point-wise reference metrics: MSE, RMSE, PSNR and MAE.
//!
//! The paper argues these are *not* good distortion measures for backlight
//! scaling (they ignore the human visual system), but they are indispensable
//! as ground-truth diagnostics and for the ablation study comparing
//! distortion measures.

use hebs_imaging::{GrayImage, Histogram};

/// Asserts that two images can be compared pixel by pixel.
fn check_dimensions(a: &GrayImage, b: &GrayImage) {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "images must have identical dimensions to be compared"
    );
}

/// Mean squared error between two images, on the 0–255 level scale.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn mean_squared_error(a: &GrayImage, b: &GrayImage) -> f64 {
    check_dimensions(a, b);
    let n = a.pixel_count() as f64;
    a.pixels()
        .zip(b.pixels())
        .map(|(x, y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / n
}

/// Root mean squared error between two images.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn root_mean_squared_error(a: &GrayImage, b: &GrayImage) -> f64 {
    mean_squared_error(a, b).sqrt()
}

/// Mean absolute error between two images, on the 0–255 level scale.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn mean_absolute_error(a: &GrayImage, b: &GrayImage) -> f64 {
    check_dimensions(a, b);
    let n = a.pixel_count() as f64;
    a.pixels()
        .zip(b.pixels())
        .map(|(x, y)| (f64::from(x) - f64::from(y)).abs())
        .sum::<f64>()
        / n
}

/// Mean squared error computed in the histogram domain: the transformed
/// image is `level_map[p]` wherever the original is `p`, so the MSE over
/// the pixels collapses to a sum over the 256 levels.
///
/// Exactly equal (up to float summation order) to
/// [`mean_squared_error`]`(original, level_map(original))`, in O(levels)
/// instead of O(pixels). An empty histogram reports 0.
pub fn mean_squared_error_from_levels(histogram: &Histogram, level_map: &[u8; 256]) -> f64 {
    let total = histogram.total();
    if total == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for (level, &count) in histogram.counts().iter().enumerate() {
        if count == 0 {
            continue;
        }
        let d = level as f64 - f64::from(level_map[level]);
        sum += count as f64 * d * d;
    }
    sum / total as f64
}

/// Peak signal-to-noise ratio in decibels (peak level 255).
///
/// Returns `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn peak_signal_to_noise_ratio(a: &GrayImage, b: &GrayImage) -> f64 {
    let mse = mean_squared_error(a, b);
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> GrayImage {
        GrayImage::from_fn(32, 32, |x, y| ((x * 5 + y * 11) % 256) as u8)
    }

    #[test]
    fn identical_images_have_zero_error() {
        let img = test_image();
        assert_eq!(mean_squared_error(&img, &img), 0.0);
        assert_eq!(root_mean_squared_error(&img, &img), 0.0);
        assert_eq!(mean_absolute_error(&img, &img), 0.0);
        assert_eq!(peak_signal_to_noise_ratio(&img, &img), f64::INFINITY);
    }

    #[test]
    fn constant_offset_error() {
        let img = GrayImage::filled(8, 8, 100);
        let shifted = GrayImage::filled(8, 8, 110);
        assert_eq!(mean_squared_error(&img, &shifted), 100.0);
        assert_eq!(root_mean_squared_error(&img, &shifted), 10.0);
        assert_eq!(mean_absolute_error(&img, &shifted), 10.0);
    }

    #[test]
    fn psnr_of_known_mse() {
        let img = GrayImage::filled(8, 8, 100);
        let shifted = GrayImage::filled(8, 8, 110);
        // PSNR = 10 log10(255² / 100) ≈ 28.13 dB.
        let psnr = peak_signal_to_noise_ratio(&img, &shifted);
        assert!((psnr - 28.13).abs() < 0.01);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = test_image();
        let b = a.map(|v| v.saturating_add(17));
        assert_eq!(mean_squared_error(&a, &b), mean_squared_error(&b, &a));
        assert_eq!(mean_absolute_error(&a, &b), mean_absolute_error(&b, &a));
    }

    #[test]
    fn worst_case_error() {
        let black = GrayImage::filled(4, 4, 0);
        let white = GrayImage::filled(4, 4, 255);
        assert_eq!(mean_squared_error(&black, &white), 255.0 * 255.0);
        assert_eq!(mean_absolute_error(&black, &white), 255.0);
        assert_eq!(peak_signal_to_noise_ratio(&black, &white), 0.0);
    }

    #[test]
    fn histogram_mse_matches_pixel_mse() {
        let img = test_image();
        let mut level_map = [0u8; 256];
        for (i, e) in level_map.iter_mut().enumerate() {
            *e = ((i * 2) / 3) as u8;
        }
        let transformed = img.map(|v| level_map[v as usize]);
        let pixel = mean_squared_error(&img, &transformed);
        let hist = mean_squared_error_from_levels(&Histogram::of(&img), &level_map);
        assert!((pixel - hist).abs() < 1e-9);
        assert_eq!(
            mean_squared_error_from_levels(&Histogram::new(), &level_map),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn mismatched_dimensions_panic() {
        let a = GrayImage::filled(4, 4, 0);
        let b = GrayImage::filled(4, 5, 0);
        let _ = mean_squared_error(&a, &b);
    }
}
