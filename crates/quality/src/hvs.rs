//! Human-visual-system (HVS) pre-filter.
//!
//! Section 2 of the HEBS paper (following its reference \[6\]) recommends
//! transforming both the original and the backlight-scaled image "according
//! to a human visual system model" before comparing them quantitatively.
//! This module implements a light-weight version of the classical two-stage
//! model described in Pratt's *Digital Image Processing* (paper reference
//! \[9\]):
//!
//! 1. **Luminance adaptation** — perceived brightness is a compressive,
//!    roughly cube-root function of luminance (Weber–Fechner / CIE L*
//!    behaviour), so differences in dark regions weigh more than equal
//!    differences in bright regions.
//! 2. **Contrast sensitivity** — the eye is most sensitive to mid spatial
//!    frequencies; very slow gradients and very fine detail matter less.
//!    This is approximated with a centre–surround (difference-of-boxes)
//!    band-pass filter blended with the adapted luminance.
//!
//! The output is again an 8-bit image so every metric in this crate can be
//! applied to the filtered pair.

use hebs_imaging::GrayImage;

/// Configuration of the HVS pre-filter.
///
/// ```
/// use hebs_imaging::GrayImage;
/// use hebs_quality::HvsModel;
///
/// let model = HvsModel::default();
/// let img = GrayImage::from_fn(32, 32, |x, _| (x * 8) as u8);
/// let perceived = model.apply(&img);
/// assert_eq!(perceived.width(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HvsModel {
    /// Exponent of the luminance-adaptation power law (CIE-like ≈ 1/3,
    /// identity = 1.0).
    pub adaptation_exponent: f64,
    /// Radius (in pixels) of the surround box of the contrast-sensitivity
    /// filter. 0 disables the band-pass stage.
    pub surround_radius: u32,
    /// Blend factor in `[0, 1]` between the adapted luminance (0) and the
    /// band-pass response (1).
    pub contrast_weight: f64,
}

impl Default for HvsModel {
    fn default() -> Self {
        // The adaptation exponent follows the CIE lightness cube-root law;
        // the centre–surround stage is blended in lightly. A larger contrast
        // weight dilutes global-brightness differences (the re-centred
        // band-pass term is shared by both images), which makes backlight
        // dimming look cheaper than observers report — 0.15 keeps the
        // luminance penalty of dimming close to the paper's distortion scale.
        HvsModel {
            adaptation_exponent: 1.0 / 3.0,
            surround_radius: 2,
            contrast_weight: 0.15,
        }
    }
}

impl HvsModel {
    /// A model that performs luminance adaptation only (no spatial
    /// filtering). Useful to isolate the two effects in ablations.
    pub fn adaptation_only() -> Self {
        HvsModel {
            adaptation_exponent: 1.0 / 3.0,
            surround_radius: 0,
            contrast_weight: 0.0,
        }
    }

    /// The identity model: the filtered image equals the input. With this
    /// model the HEBS distortion measure degenerates to plain UIQI.
    pub fn identity() -> Self {
        HvsModel {
            adaptation_exponent: 1.0,
            surround_radius: 0,
            contrast_weight: 0.0,
        }
    }

    /// Applies the model to an image, producing the "perceived" image.
    pub fn apply(&self, image: &GrayImage) -> GrayImage {
        let adapted = self.adapt_luminance(image);
        if self.surround_radius == 0 || self.contrast_weight <= 0.0 {
            return adapted;
        }
        let surround = box_blur(&adapted, self.surround_radius);
        let w = self.contrast_weight.clamp(0.0, 1.0);
        GrayImage::from_fn(image.width(), image.height(), |x, y| {
            let centre = f64::from(adapted.get(x, y).expect("in bounds"));
            let local_mean = f64::from(surround.get(x, y).expect("in bounds"));
            // Band-pass response re-centred on mid gray so it stays in range.
            let band_pass = 128.0 + (centre - local_mean);
            let blended = (1.0 - w) * centre + w * band_pass;
            blended.round().clamp(0.0, 255.0) as u8
        })
    }

    /// Applies the model to both images of a pair.
    pub fn apply_pair(&self, a: &GrayImage, b: &GrayImage) -> (GrayImage, GrayImage) {
        (self.apply(a), self.apply(b))
    }

    fn adapt_luminance(&self, image: &GrayImage) -> GrayImage {
        let exponent = self.adaptation_exponent;
        if (exponent - 1.0).abs() < 1e-12 {
            return image.clone();
        }
        image.map(|v| {
            let x = f64::from(v) / 255.0;
            (x.powf(exponent) * 255.0).round().clamp(0.0, 255.0) as u8
        })
    }
}

/// Box blur with the given radius (window of `2r + 1` pixels per side),
/// clamping at the borders.
fn box_blur(image: &GrayImage, radius: u32) -> GrayImage {
    if radius == 0 {
        return image.clone();
    }
    let w = image.width() as i64;
    let h = image.height() as i64;
    let r = radius as i64;
    GrayImage::from_fn(image.width(), image.height(), |x, y| {
        let mut sum = 0u64;
        let mut count = 0u64;
        for dy in -r..=r {
            for dx in -r..=r {
                let xx = (i64::from(x) + dx).clamp(0, w - 1) as u32;
                let yy = (i64::from(y) + dy).clamp(0, h - 1) as u32;
                sum += u64::from(image.get(xx, yy).expect("clamped coordinate"));
                count += 1;
            }
        }
        (sum as f64 / count as f64).round() as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    #[test]
    fn identity_model_is_a_noop() {
        let img = synthetic::portrait(48, 48, 3);
        assert_eq!(HvsModel::identity().apply(&img), img);
    }

    #[test]
    fn adaptation_brightens_dark_regions_relatively() {
        let model = HvsModel::adaptation_only();
        let img = GrayImage::from_fn(4, 1, |x, _| [10u8, 60, 130, 250][x as usize]);
        let adapted = model.apply(&img);
        // Cube root compresses: dark pixels gain more than bright ones.
        assert!(adapted.get(0, 0).unwrap() > 10);
        assert!(adapted.get(3, 0).unwrap() >= 240);
        // Monotonicity is preserved.
        let values: Vec<u8> = adapted.pixels().collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn default_model_preserves_dimensions_and_determinism() {
        let img = synthetic::landscape(40, 30, 8);
        let model = HvsModel::default();
        let a = model.apply(&img);
        let b = model.apply(&img);
        assert_eq!(a, b);
        assert_eq!(a.width(), 40);
        assert_eq!(a.height(), 30);
    }

    #[test]
    fn flat_image_stays_flat_under_band_pass() {
        let img = GrayImage::filled(16, 16, 200);
        let model = HvsModel::default();
        let out = model.apply(&img);
        // A constant image has no structure: the band-pass response is the
        // re-centred constant, blended back — output stays constant.
        let first = out.get(0, 0).unwrap();
        assert!(out.pixels().all(|v| v == first));
    }

    #[test]
    fn apply_pair_filters_both() {
        let a = synthetic::portrait(32, 32, 1);
        let b = a.map(|v| v.saturating_add(20));
        let model = HvsModel::default();
        let (fa, fb) = model.apply_pair(&a, &b);
        assert_eq!(fa, model.apply(&a));
        assert_eq!(fb, model.apply(&b));
    }

    #[test]
    fn box_blur_smooths_a_spike() {
        let mut img = GrayImage::filled(9, 9, 0);
        img.set(4, 4, 255).unwrap();
        let blurred = box_blur(&img, 1);
        // The spike is spread over a 3x3 neighbourhood.
        assert!(blurred.get(4, 4).unwrap() < 255);
        assert!(blurred.get(3, 4).unwrap() > 0);
        assert_eq!(blurred.get(0, 0), Some(0));
    }

    #[test]
    fn box_blur_radius_zero_is_identity() {
        let img = synthetic::fine_texture(16, 16, 2);
        assert_eq!(box_blur(&img, 0), img);
    }

    #[test]
    fn hvs_filtered_distortion_differs_from_raw() {
        // The HVS weighting should change the measured distortion of a
        // dark-region-only degradation vs a bright-region-only degradation.
        use crate::uiqi::universal_quality_index;
        let img = synthetic::landscape(64, 64, 5);
        let dark_damaged = img.map(|v| if v < 80 { v / 2 } else { v });
        let model = HvsModel::adaptation_only();
        let raw_q = universal_quality_index(&img, &dark_damaged);
        let (fa, fb) = model.apply_pair(&img, &dark_damaged);
        let hvs_q = universal_quality_index(&fa, &fb);
        // After adaptation the dark-region damage is amplified, so perceived
        // quality is lower (distortion higher).
        assert!(hvs_q < raw_q + 1e-9);
    }
}
