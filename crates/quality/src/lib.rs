//! Image distortion metrics for the HEBS reproduction.
//!
//! The key argument of the HEBS paper is that previous backlight-scaling
//! policies *overestimate* distortion because they only count saturated or
//! clipped pixels. A correct measure must combine the mathematical pixel
//! difference with a model of the human visual system (HVS). This crate
//! provides:
//!
//! * [`mse`] — reference point-wise metrics (MSE, RMSE, PSNR, MAE).
//! * [`uiqi`] — the Universal Image Quality Index of Wang & Bovik (paper
//!   reference \[8\]), the measure HEBS adopts for its distortion
//!   characteristic curve.
//! * [`ssim`] — the Structural Similarity index (paper reference \[6\]), used
//!   as an alternative measure for ablations.
//! * [`hvs`] — a human-visual-system pre-filter (luminance adaptation +
//!   local contrast sensitivity) applied before quantitative comparison, as
//!   proposed in the paper's Section 2.
//! * [`contrast`] — the contrast-fidelity and pixel-saturation measures used
//!   by the DLS and CBCS baselines (paper references \[4\] and \[5\]).
//! * [`DistortionMeasure`] — a trait unifying all of the above so the HEBS
//!   pipeline can be run with any of them. Measures whose statistics are
//!   *global* (RMSE, global UIQI, contrast fidelity) additionally implement
//!   the histogram-domain entry point
//!   [`DistortionMeasure::distortion_from_levels`], which evaluates the
//!   exact distortion from a 256-bin histogram plus a per-level display map
//!   in O(levels) — the foundation of the core crate's frame-size
//!   independent fit path. Windowed metrics (SSIM, sliding-window UIQI,
//!   spatial HVS filtering) decline it and keep the pixel path.
//!
//! # Example
//!
//! ```
//! use hebs_imaging::GrayImage;
//! use hebs_quality::{uiqi, HebsDistortion, DistortionMeasure};
//!
//! let original = GrayImage::from_fn(64, 64, |x, y| ((x * 3 + y) % 256) as u8);
//! let identical = original.clone();
//! assert!((uiqi::universal_quality_index(&original, &identical) - 1.0).abs() < 1e-9);
//! assert!(HebsDistortion::default().distortion(&original, &identical) < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contrast;
mod distortion;
pub mod hvs;
pub mod mse;
pub mod ssim;
pub mod uiqi;
mod window;

pub use distortion::{
    ContrastMeasure, DistortionMeasure, GlobalUiqiDistortion, HebsDistortion, PixelDistortion,
    QualityIndex, SharedMeasure, StructuralDistortion,
};
pub use hvs::HvsModel;
pub use window::WindowStats;
