//! Integration tests of the serving runtime against the full pipeline:
//! cache transparency (cached results bit-identical to uncached ones),
//! order preservation under concurrency, and cache effectiveness on
//! synthetic video.

use hebs::core::{BacklightPolicy, HebsPolicy, PipelineConfig, ScalingOutcome};
use hebs::imaging::rng::StdRng;
use hebs::imaging::{FrameSequence, GrayImage, SceneKind, SipiSuite};
use hebs::runtime::{CacheConfig, CacheMode, Engine, EngineConfig};

fn policy() -> HebsPolicy {
    HebsPolicy::closed_loop(PipelineConfig::default())
}

fn assert_outcomes_bit_identical(a: &ScalingOutcome, b: &ScalingOutcome, context: &str) {
    assert_eq!(a.beta, b.beta, "{context}: beta differs");
    assert_eq!(a.dynamic_range, b.dynamic_range, "{context}: range differs");
    assert_eq!(a.distortion, b.distortion, "{context}: distortion differs");
    assert_eq!(a.power_saving, b.power_saving, "{context}: saving differs");
    assert_eq!(a.power.total(), b.power.total(), "{context}: power differs");
    assert_eq!(a.lut, b.lut, "{context}: LUT differs");
    assert_eq!(
        a.displayed, b.displayed,
        "{context}: displayed image differs"
    );
}

/// Property: for any frame, serving it through the exact-mode cache yields a
/// bit-identical outcome to serving it without a cache — whether the lookup
/// hits or misses.
#[test]
fn property_cached_results_are_identical_to_uncached() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let cached = Engine::new(
        policy(),
        EngineConfig {
            workers: 2,
            cache: Some(CacheConfig::exact()),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let uncached = Engine::new(
        policy(),
        EngineConfig {
            workers: 2,
            cache: None,
            ..EngineConfig::default()
        },
    )
    .unwrap();

    for case in 0..12 {
        let width = rng.random_range(8..32u32);
        let height = rng.random_range(8..32u32);
        let frame = GrayImage::from_fn(width, height, |_, _| rng.random_range(0..=255u8));
        // Serve each frame twice through the cache: the first pass misses,
        // the second hits; both must equal the uncached result.
        let miss = cached.process_frame(&frame).unwrap();
        let hit = cached.process_frame(&frame).unwrap();
        let reference = uncached.process_frame(&frame).unwrap();
        assert!(!miss.cache_hit);
        assert!(hit.cache_hit, "case {case}: second serve should hit");
        assert!(!reference.cache_hit);
        assert_outcomes_bit_identical(
            &miss.outcome,
            &reference.outcome,
            &format!("case {case} (miss)"),
        );
        assert_outcomes_bit_identical(
            &hit.outcome,
            &reference.outcome,
            &format!("case {case} (hit)"),
        );
    }
}

/// Property: concurrent batch output order matches input order, for batches
/// larger than the pool and for every cache mode.
#[test]
fn property_concurrent_batch_preserves_input_order() {
    let suite = SipiSuite::with_size(24);
    let frames: Vec<GrayImage> = suite.iter().map(|(_, img)| img.clone()).collect();
    for cache in [
        None,
        Some(CacheConfig::exact()),
        Some(CacheConfig::approximate()),
    ] {
        let engine = Engine::new(
            policy(),
            EngineConfig {
                workers: 4,
                cache,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let report = engine.process_batch(&frames).unwrap();
        assert_eq!(report.frames(), frames.len());
        for (i, result) in report.results.iter().enumerate() {
            assert_eq!(result.index, i, "batch result out of order");
        }
        // Each result is the outcome for *its own* frame: the displayed
        // image has that frame's dimensions (the suite is homogeneous, so
        // also spot-check against the sequential policy).
        let sequential = policy().optimize(&frames[3], 0.10).unwrap();
        assert_outcomes_bit_identical(&report.results[3].outcome, &sequential, "row 3");
    }
}

/// Acceptance: a 64+ frame synthetic video batch across at least two worker
/// threads shows a measurable cache hit rate, and every cache-served frame
/// is bit-identical to the uncached evaluation of the same frame.
#[test]
fn video_batch_on_a_pool_has_a_measurable_hit_rate_and_identical_results() {
    // Scene cuts repeat identical frames within each half, so the exact
    // cache gets real hits on genuinely equal frames.
    let frames: Vec<GrayImage> = FrameSequence::new(SceneKind::SceneCut, 48, 48, 64, 21)
        .frames()
        .collect();
    assert!(frames.len() >= 64);

    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 4,
            cache: Some(CacheConfig::exact()),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert!(engine.workers() >= 2);
    let report = engine.process_batch(&frames).unwrap();
    assert!(
        report.cache_hit_rate() > 0.5,
        "expected a measurable hit rate on repeated frames, got {}",
        report.cache_hit_rate()
    );

    let uncached = Engine::new(policy(), EngineConfig::sequential(0.10)).unwrap();
    let reference = uncached.process_batch(&frames).unwrap();
    for (cached, plain) in report.results.iter().zip(&reference.results) {
        assert_outcomes_bit_identical(
            &cached.outcome,
            &plain.outcome,
            &format!("frame {}", cached.index),
        );
    }

    let stats = engine.stats();
    assert_eq!(stats.frames, 64);
    assert!(stats.cache_hit_rate() > 0.5);
}

/// The approximate (signature-keyed) cache reuses fits on noisy static video
/// and keeps the measured per-frame distortion within the smoothing slack of
/// the budget.
#[test]
fn approximate_cache_reuses_fits_on_noisy_video() {
    let frames: Vec<GrayImage> = FrameSequence::new(SceneKind::Static, 48, 48, 24, 5)
        .frames()
        .collect();
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 2,
            max_distortion: 0.10,
            cache: Some(CacheConfig {
                mode: CacheMode::Approximate,
                ..CacheConfig::default()
            }),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let report = engine.process_batch(&frames).unwrap();
    assert!(
        report.cache_hit_rate() > 0.3,
        "noisy static frames should mostly share one fit, hit rate {}",
        report.cache_hit_rate()
    );
    for result in &report.results {
        // The fit came from a near-identical frame; the measured distortion
        // of the actual frame stays within a small slack of the budget.
        assert!(
            result.outcome.distortion <= 0.10 + 0.05,
            "frame {}: distortion {} drifted too far",
            result.index,
            result.outcome.distortion
        );
    }
}

/// Streaming and batching agree on the same input.
#[test]
fn streaming_agrees_with_batching() {
    let frames: Vec<GrayImage> = FrameSequence::new(SceneKind::FadeToBlack, 32, 32, 10, 9)
        .frames()
        .collect();
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 3,
            queue_depth: 2,
            cache: None,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let streamed: Vec<_> = engine
        .stream(frames.clone())
        .collect::<hebs::runtime::Result<Vec<_>>>()
        .unwrap();
    let batched = engine.process_batch(&frames).unwrap();
    assert_eq!(streamed.len(), batched.frames());
    for (s, b) in streamed.iter().zip(&batched.results) {
        assert_eq!(s.index, b.index);
        assert_outcomes_bit_identical(&s.outcome, &b.outcome, &format!("frame {}", s.index));
    }
}
