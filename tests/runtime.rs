//! Integration tests of the serving runtime against the full pipeline:
//! cache transparency (cached results bit-identical to uncached ones),
//! order preservation under concurrency, and cache effectiveness on
//! synthetic video.

use hebs::core::{
    BacklightPolicy, BankClass, CharacteristicBank, CharacterizationSample, CurveFit,
    DistortionCharacteristic, HebsPolicy, PipelineConfig, ScalingOutcome, DEFAULT_RANGES,
};
use hebs::imaging::rng::StdRng;
use hebs::imaging::{FrameSequence, GrayImage, Histogram, SceneKind, SipiSuite};
use hebs::quality::GlobalUiqiDistortion;
use hebs::runtime::{
    CacheConfig, CacheMode, Engine, EngineConfig, RecharacterizePolicy, RuntimeError, ServeOptions,
    ServingMode, TenantRegistry, TenantSpec,
};

fn policy() -> HebsPolicy {
    HebsPolicy::closed_loop(PipelineConfig::default())
}

/// The pipeline configuration open-loop serving is designed around: the
/// histogram-capable global UIQI measure, so fits, drift rechecks and
/// re-characterization all run in O(levels). One open-loop miss is exactly
/// one `fit_evaluations` tick regardless of the blend mode.
fn open_loop_pipeline() -> PipelineConfig {
    PipelineConfig::default().with_measure(GlobalUiqiDistortion)
}

fn histogram_policy() -> HebsPolicy {
    HebsPolicy::closed_loop(open_loop_pipeline())
}

/// Characterizes the given frames offline, the way a deployment seeds an
/// open-loop engine.
fn characterize(frames: &[GrayImage]) -> DistortionCharacteristic {
    let histograms: Vec<Histogram> = frames.iter().map(Histogram::of).collect();
    DistortionCharacteristic::characterize_from_histograms(
        &open_loop_pipeline(),
        &histograms,
        &DEFAULT_RANGES,
    )
    .unwrap()
}

fn assert_outcomes_bit_identical(a: &ScalingOutcome, b: &ScalingOutcome, context: &str) {
    assert_eq!(a.beta, b.beta, "{context}: beta differs");
    assert_eq!(a.dynamic_range, b.dynamic_range, "{context}: range differs");
    assert_eq!(a.distortion, b.distortion, "{context}: distortion differs");
    assert_eq!(a.power_saving, b.power_saving, "{context}: saving differs");
    assert_eq!(a.power.total(), b.power.total(), "{context}: power differs");
    assert_eq!(a.lut, b.lut, "{context}: LUT differs");
    assert_eq!(
        a.displayed, b.displayed,
        "{context}: displayed image differs"
    );
}

/// Property: for any frame, serving it through the exact-mode cache yields a
/// bit-identical outcome to serving it without a cache — whether the lookup
/// hits or misses.
#[test]
fn property_cached_results_are_identical_to_uncached() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let cached = Engine::new(
        policy(),
        EngineConfig {
            workers: 2,
            cache: Some(CacheConfig::exact()),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let uncached = Engine::new(
        policy(),
        EngineConfig {
            workers: 2,
            cache: None,
            ..EngineConfig::default()
        },
    )
    .unwrap();

    for case in 0..12 {
        let width = rng.random_range(8..32u32);
        let height = rng.random_range(8..32u32);
        let frame = GrayImage::from_fn(width, height, |_, _| rng.random_range(0..=255u8));
        // Serve each frame twice through the cache: the first pass misses,
        // the second hits; both must equal the uncached result.
        let miss = cached.process_frame(&frame).unwrap();
        let hit = cached.process_frame(&frame).unwrap();
        let reference = uncached.process_frame(&frame).unwrap();
        assert!(!miss.cache_hit);
        assert!(hit.cache_hit, "case {case}: second serve should hit");
        assert!(!reference.cache_hit);
        assert_outcomes_bit_identical(
            &miss.outcome,
            &reference.outcome,
            &format!("case {case} (miss)"),
        );
        assert_outcomes_bit_identical(
            &hit.outcome,
            &reference.outcome,
            &format!("case {case} (hit)"),
        );
    }
}

/// Property: concurrent batch output order matches input order, for batches
/// larger than the pool and for every cache mode.
#[test]
fn property_concurrent_batch_preserves_input_order() {
    let suite = SipiSuite::with_size(24);
    let frames: Vec<GrayImage> = suite.iter().map(|(_, img)| img.clone()).collect();
    for cache in [
        None,
        Some(CacheConfig::exact()),
        Some(CacheConfig::approximate()),
    ] {
        let engine = Engine::new(
            policy(),
            EngineConfig {
                workers: 4,
                cache,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let report = engine.process_batch(&frames).unwrap();
        assert_eq!(report.frames(), frames.len());
        for (i, result) in report.results.iter().enumerate() {
            assert_eq!(result.index, i, "batch result out of order");
        }
        // Each result is the outcome for *its own* frame: the displayed
        // image has that frame's dimensions (the suite is homogeneous, so
        // also spot-check against the sequential policy).
        let sequential = policy().optimize(&frames[3], 0.10).unwrap();
        assert_outcomes_bit_identical(&report.results[3].outcome, &sequential, "row 3");
    }
}

/// Acceptance: a 64+ frame synthetic video batch across at least two worker
/// threads shows a measurable cache hit rate, and every cache-served frame
/// is bit-identical to the uncached evaluation of the same frame.
#[test]
fn video_batch_on_a_pool_has_a_measurable_hit_rate_and_identical_results() {
    // Scene cuts repeat identical frames within each half, so the exact
    // cache gets real hits on genuinely equal frames.
    let frames: Vec<GrayImage> = FrameSequence::new(SceneKind::SceneCut, 48, 48, 64, 21)
        .frames()
        .collect();
    assert!(frames.len() >= 64);

    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 4,
            cache: Some(CacheConfig::exact()),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert!(engine.workers() >= 2);
    let report = engine.process_batch(&frames).unwrap();
    assert!(
        report.cache_hit_rate() > 0.5,
        "expected a measurable hit rate on repeated frames, got {}",
        report.cache_hit_rate()
    );

    let uncached = Engine::new(policy(), EngineConfig::sequential(0.10)).unwrap();
    let reference = uncached.process_batch(&frames).unwrap();
    for (cached, plain) in report.results.iter().zip(&reference.results) {
        assert_outcomes_bit_identical(
            &cached.outcome,
            &plain.outcome,
            &format!("frame {}", cached.index),
        );
    }

    let stats = engine.stats();
    assert_eq!(stats.frames, 64);
    assert!(stats.cache_hit_rate() > 0.5);
}

/// The approximate (signature-keyed) cache reuses fits on noisy static video
/// and keeps the measured per-frame distortion within the smoothing slack of
/// the budget.
#[test]
fn approximate_cache_reuses_fits_on_noisy_video() {
    let frames: Vec<GrayImage> = FrameSequence::new(SceneKind::Static, 48, 48, 24, 5)
        .frames()
        .collect();
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 2,
            max_distortion: 0.10,
            cache: Some(CacheConfig {
                mode: CacheMode::Approximate,
                ..CacheConfig::default()
            }),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let report = engine.process_batch(&frames).unwrap();
    assert!(
        report.cache_hit_rate() > 0.3,
        "noisy static frames should mostly share one fit, hit rate {}",
        report.cache_hit_rate()
    );
    for result in &report.results {
        // The fit came from a near-identical frame; the measured distortion
        // of the actual frame stays within a small slack of the budget.
        assert!(
            result.outcome.distortion <= 0.10 + 0.05,
            "frame {}: distortion {} drifted too far",
            result.index,
            result.outcome.distortion
        );
    }
}

/// A barrier-synchronized miss storm on one key runs exactly one fit: the
/// other workers wait on the single-flight marker and are served the
/// leader's result as coalesced hits.
#[test]
fn single_flight_collapses_a_concurrent_miss_storm_into_one_fit() {
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 1,
            cache: Some(CacheConfig::exact()),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let frame: GrayImage = SipiSuite::with_size(48)
        .iter()
        .next()
        .map(|(_, img)| img.clone())
        .unwrap();
    let storm = 6u64;
    let barrier = std::sync::Barrier::new(storm as usize);
    std::thread::scope(|scope| {
        for _ in 0..storm {
            let engine = engine.clone();
            let frame = &frame;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                engine.process_frame(frame).unwrap();
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.frames, storm);
    assert_eq!(stats.cache_misses, 1, "exactly one fit must run");
    assert_eq!(stats.cache_hits, storm - 1);
    // How many of those hits count as *coalesced* (first probe beat the
    // leader's insert) vs plain (probed after it landed) is scheduler-
    // dependent, so only the accounting invariant is asserted:
    assert!(stats.cache_coalesced < storm);
    // The store's own counters agree with the engine's on this path too.
    let counters = engine.cache_counters().unwrap();
    assert_eq!(counters.hits, stats.cache_hits);
    assert_eq!(counters.misses, stats.cache_misses);
    assert_eq!(counters.coalesced, stats.cache_coalesced);
}

/// The exact cache respects a configurable byte budget: resident bytes
/// never exceed it, eviction is by recency, and a budget too small for even
/// one entry simply disables caching rather than thrashing.
#[test]
fn byte_budget_bounds_resident_cache_size() {
    // 64x64 entries weigh ~2 frames (stored pixels + displayed image) plus
    // the LUT: ~8.5 KiB. A 20 KiB budget on one shard holds two of them.
    let frames: Vec<GrayImage> = SipiSuite::with_size(64)
        .iter()
        .take(6)
        .map(|(_, img)| img.clone())
        .collect();
    let budget = 20 * 1024;
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 1,
            cache: Some(CacheConfig {
                shards: 1,
                byte_budget: Some(budget),
                ..CacheConfig::exact()
            }),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    for frame in &frames {
        engine.process_frame(frame).unwrap();
        assert!(
            engine.cached_bytes() <= budget,
            "resident bytes {} exceed the budget {budget}",
            engine.cached_bytes()
        );
    }
    assert!(engine.cached_fits() >= 1);
    assert!(engine.cached_fits() < frames.len(), "eviction happened");
    // The most recently served frame is still resident.
    let last = engine.process_frame(frames.last().unwrap()).unwrap();
    assert!(last.cache_hit);

    // An entry-sized budget below one entry refuses admission but serves
    // correctly.
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 1,
            cache: Some(CacheConfig {
                shards: 1,
                byte_budget: Some(1024),
                ..CacheConfig::exact()
            }),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    engine.process_frame(&frames[0]).unwrap();
    assert_eq!(engine.cached_fits(), 0, "oversized entries are refused");
    assert_eq!(engine.cached_bytes(), 0);
}

/// Budgets quantizing into the same band share cache entries: a fit made
/// for a strict budget serves looser requests directly, and a loose fit
/// that fails the stricter budget's distortion recheck is rejected and
/// replaced by a refit whose result honours the stricter contract.
#[test]
fn fits_are_shared_across_budgets_within_a_band() {
    let frame: GrayImage = SipiSuite::with_size(48)
        .iter()
        .next()
        .map(|(_, img)| img.clone())
        .unwrap();

    // Strict first: the strict fit's measured distortion satisfies every
    // looser budget in the band, so the loose request is a direct hit.
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 1,
            max_distortion: 0.02,
            cache: Some(CacheConfig::exact().with_budget_band_width(0.5)),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let strict = engine.process_frame(&frame).unwrap();
    assert!(!strict.cache_hit);
    let loose = engine.process_frame_with_budget(&frame, 0.30).unwrap();
    assert!(loose.cache_hit, "stricter fit serves the looser budget");
    assert_eq!(loose.outcome.distortion, strict.outcome.distortion);

    // Loose first: the loose fit exceeds the stricter budget, so the hit
    // is rejected, the entry evicted, and the refit honours the contract.
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 1,
            max_distortion: 0.30,
            cache: Some(CacheConfig::exact().with_budget_band_width(0.5)),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let loose = engine.process_frame(&frame).unwrap();
    assert!(loose.outcome.distortion > 0.02);
    let strict = engine.process_frame_with_budget(&frame, 0.02).unwrap();
    assert!(!strict.cache_hit, "rejected hit surfaces as a miss");
    assert!(
        strict.outcome.distortion <= 0.02,
        "refit honours the budget"
    );
    let stats = engine.stats();
    assert_eq!(stats.cache_rejected, 1);
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.frames);
}

/// Regression for the open-loop miss path: with a seeded characteristic,
/// every cache miss costs at most **one** fit evaluation (the closed-loop
/// bisection costs ~8), no drift fallback fires on the traffic the curve
/// was characterized on, and the distortion contract still holds.
#[test]
fn open_loop_misses_cost_at_most_one_fit_evaluation() {
    let frames: Vec<GrayImage> = SipiSuite::with_size(32)
        .iter()
        .map(|(_, img)| img.clone())
        .collect();
    let engine = Engine::new(
        histogram_policy(),
        EngineConfig {
            workers: 1,
            max_distortion: 0.10,
            cache: Some(CacheConfig::exact()),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy::default(),
            },
            ..EngineConfig::default()
        },
    )
    .unwrap();
    engine
        .install_characteristic(characterize(&frames))
        .unwrap();

    for frame in &frames {
        let result = engine.process_frame(frame).unwrap();
        assert!(
            result.outcome.distortion <= 0.10 + 1e-9,
            "open-loop serving must still honour the budget, got {}",
            result.outcome.distortion
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.frames, frames.len() as u64);
    assert!(stats.cache_misses > 0);
    assert_eq!(
        stats.open_loop_fallbacks, 0,
        "characterized traffic must not drift"
    );
    assert!(
        stats.fit_evaluations <= stats.cache_misses,
        "{} evaluations for {} misses: open-loop misses must average ≤ 1",
        stats.fit_evaluations,
        stats.cache_misses
    );

    // A second pass is pure cache replay: no further evaluations at all.
    let evaluations_after_cold = stats.fit_evaluations;
    for frame in &frames {
        assert!(engine.process_frame(frame).unwrap().cache_hit);
    }
    assert_eq!(engine.stats().fit_evaluations, evaluations_after_cold);
}

/// Drift injection: a bogus characteristic that promises zero distortion at
/// tiny ranges forces every open-loop fit over budget. The per-serve drift
/// check must fall back to the closed-loop search (contract intact), the
/// drift trigger must re-characterize from the traffic sketch, and the
/// rebuilt curve must stop the fallbacks.
#[test]
fn drift_injection_triggers_fallback_and_recharacterization() {
    // A curve claiming distortion ≈ 0 everywhere: min_range_for(0.10)
    // returns the smallest range, so every fit lands wildly over budget.
    let lying_samples: Vec<CharacterizationSample> = (0..6)
        .map(|i| CharacterizationSample {
            image: format!("lie{i}"),
            dynamic_range: 40 * (i + 1),
            distortion: 0.0,
            power_saving: 0.9,
        })
        .collect();
    let lying_curve = DistortionCharacteristic::from_samples(lying_samples).unwrap();

    let engine = Engine::new(
        histogram_policy(),
        EngineConfig {
            workers: 1,
            max_distortion: 0.10,
            cache: Some(CacheConfig::exact()),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    interval: None,
                    drift_limit: Some(2),
                    sample_period: 1,
                    sample_capacity: 8,
                    ..RecharacterizePolicy::default()
                },
            },
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let lying_generation = engine.install_characteristic(lying_curve).unwrap();

    let frames: Vec<GrayImage> = SipiSuite::with_size(32)
        .iter()
        .take(8)
        .map(|(_, img)| img.clone())
        .collect();
    for frame in &frames {
        let result = engine.process_frame(frame).unwrap();
        assert!(
            result.outcome.distortion <= 0.10 + 1e-9,
            "the fallback must keep the contract under a lying curve"
        );
    }

    let stats = engine.stats();
    assert!(
        stats.open_loop_fallbacks >= 2,
        "the lying curve must trip the drift check, got {}",
        stats.open_loop_fallbacks
    );
    assert!(
        stats.recharacterizations >= 1,
        "the drift limit must trigger a background re-characterization"
    );
    assert!(
        engine.characteristic_generation() > lying_generation,
        "the rebuilt curve must supersede the lying one"
    );

    // The rebuilt curve was characterized on exactly this traffic: serving
    // fresh (uncached) copies of it must no longer fall back.
    let fallbacks_after_rebuild = stats.open_loop_fallbacks;
    let misses_before = stats.cache_misses;
    let evaluations_before = stats.fit_evaluations;
    for frame in &frames {
        engine.process_frame(frame).unwrap();
    }
    let healed = engine.stats();
    let new_misses = healed.cache_misses - misses_before;
    assert!(new_misses > 0, "generation bump forces refits");
    assert_eq!(
        healed.open_loop_fallbacks, fallbacks_after_rebuild,
        "re-characterized traffic must not drift"
    );
    assert!(
        healed.fit_evaluations - evaluations_before <= new_misses,
        "healed misses are back to one evaluation each"
    );
}

/// The characteristic generation is part of every cache key: swapping a new
/// curve in must invalidate fits made under the old one instead of replaying
/// them.
#[test]
fn characteristic_swap_invalidates_stale_cached_fits() {
    let frames: Vec<GrayImage> = SipiSuite::with_size(32)
        .iter()
        .take(4)
        .map(|(_, img)| img.clone())
        .collect();
    for cache in [CacheConfig::exact(), CacheConfig::approximate()] {
        let engine = Engine::new(
            histogram_policy(),
            EngineConfig {
                workers: 1,
                max_distortion: 0.10,
                cache: Some(cache),
                mode: ServingMode::OpenLoop {
                    recharacterize: RecharacterizePolicy::default(),
                },
                ..EngineConfig::default()
            },
        )
        .unwrap();
        engine
            .install_characteristic(characterize(&frames))
            .unwrap();

        let first = engine.process_frame(&frames[0]).unwrap();
        assert!(!first.cache_hit);
        assert!(engine.process_frame(&frames[0]).unwrap().cache_hit);

        // Same curve content, new install: the generation alone must
        // invalidate.
        let generation = engine
            .install_characteristic(characterize(&frames))
            .unwrap();
        assert_eq!(generation, engine.characteristic_generation());
        let after_swap = engine.process_frame(&frames[0]).unwrap();
        assert!(
            !after_swap.cache_hit,
            "a fit made under the old curve must not be replayed"
        );
        assert!(engine.process_frame(&frames[0]).unwrap().cache_hit);
    }
}

/// A background rebuild whose curve matches the installed one must NOT be
/// swapped in: swapping bumps the key generation and would wipe the cache,
/// so stationary traffic has to keep its cached fits across interval
/// rebuilds (`RecharacterizePolicy::min_swap_delta`).
#[test]
fn stationary_rebuilds_do_not_wipe_the_cache() {
    let frame: GrayImage = SipiSuite::with_size(32)
        .iter()
        .next()
        .map(|(_, img)| img.clone())
        .unwrap();
    let engine = Engine::new(
        histogram_policy(),
        EngineConfig {
            workers: 1,
            max_distortion: 0.10,
            cache: Some(CacheConfig::exact()),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    interval: Some(2), // rebuild every 2 frames
                    drift_limit: None,
                    sample_period: 1,
                    ..RecharacterizePolicy::default()
                },
            },
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let seeded = engine
        .install_characteristic(characterize(std::slice::from_ref(&frame)))
        .unwrap();

    assert!(!engine.process_frame(&frame).unwrap().cache_hit);
    for _ in 0..6 {
        // Interval rebuilds fire during this run, each characterizing the
        // same traffic: the rebuilt curve matches, so no swap happens and
        // the cached fit keeps serving.
        assert!(
            engine.process_frame(&frame).unwrap().cache_hit,
            "a no-op rebuild must not invalidate the cache"
        );
    }
    assert_eq!(
        engine.characteristic_generation(),
        seeded,
        "matching rebuilds must not bump the generation"
    );
    assert_eq!(engine.stats().recharacterizations, 0);
}

/// Open-loop serving with the paper's windowed (histogram-incapable)
/// measure still works off an installed curve — it just cannot rebuild the
/// curve from the sketch, and the drift fallback keeps the contract.
#[test]
fn open_loop_serves_windowed_measures_from_an_installed_curve() {
    let frames: Vec<GrayImage> = SipiSuite::with_size(24)
        .iter()
        .take(6)
        .map(|(_, img)| img.clone())
        .collect();
    // Characterize through the pixel path (frames, not histograms).
    let config = PipelineConfig::default();
    let named: Vec<(String, &GrayImage)> = frames
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("f{i}"), f))
        .collect();
    let curve = DistortionCharacteristic::characterize(
        &config,
        named.iter().map(|(n, f)| (n.as_str(), *f)),
        &DEFAULT_RANGES,
    )
    .unwrap();

    let engine = Engine::new(
        policy(), // windowed default measure
        EngineConfig {
            workers: 1,
            max_distortion: 0.10,
            cache: Some(CacheConfig::exact()),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    sample_period: 1,
                    drift_limit: Some(1),
                    ..RecharacterizePolicy::default()
                },
            },
            ..EngineConfig::default()
        },
    )
    .unwrap();
    engine.install_characteristic(curve).unwrap();
    for frame in &frames {
        let result = engine.process_frame(frame).unwrap();
        assert!(result.outcome.distortion <= 0.10 + 1e-9);
    }
    let stats = engine.stats();
    assert_eq!(
        stats.recharacterizations, 0,
        "a windowed measure cannot rebuild from the histogram sketch"
    );
    assert!(
        stats.fit_evaluations < stats.cache_misses * 4,
        "most misses should take the one-evaluation open-loop path"
    );
}

/// The tentpole regression for mixed traffic: on heterogeneous traffic
/// (three distinct histogram shapes) the single worst-case curve refuses to
/// dim (~0% saving), while the signature-clustered per-class bank recovers
/// at least half of the closed-loop saving — at open-loop fit cost and with
/// the distortion contract intact.
#[test]
fn per_class_bank_recovers_dimming_the_worst_case_curve_refuses() {
    use hebs::imaging::synthetic;
    let budget = 0.10;
    // Three content classes, three near-identical members each.
    let mut frames: Vec<GrayImage> = Vec::new();
    for seed in 0..3 {
        frames.push(synthetic::low_key(32, 32, seed));
    }
    for seed in 0..3 {
        frames.push(synthetic::high_key(32, 32, seed));
    }
    for seed in 0..3 {
        frames.push(synthetic::fine_texture(32, 32, seed));
    }
    let histograms: Vec<Histogram> = frames.iter().map(Histogram::of).collect();

    // Closed-loop reference: the per-frame search is the ceiling.
    let closed = Engine::new(
        histogram_policy(),
        EngineConfig {
            workers: 1,
            max_distortion: budget,
            cache: Some(CacheConfig::exact()),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let closed_saving = closed.process_batch(&frames).unwrap().mean_power_saving();
    assert!(closed_saving > 0.2, "closed loop dims, got {closed_saving}");

    let open_engine = |classes: usize| {
        Engine::new(
            histogram_policy(),
            EngineConfig {
                workers: 1,
                max_distortion: budget,
                cache: Some(CacheConfig::exact()),
                mode: ServingMode::OpenLoop {
                    recharacterize: RecharacterizePolicy {
                        interval: None,
                        drift_limit: None,
                        classes,
                        ..RecharacterizePolicy::default()
                    },
                },
                ..EngineConfig::default()
            },
        )
        .unwrap()
    };

    // The single worst-case curve over all three shapes refuses to dim.
    let single = open_engine(1);
    single
        .install_characteristic(
            DistortionCharacteristic::characterize_from_histograms(
                &open_loop_pipeline(),
                &histograms,
                &DEFAULT_RANGES,
            )
            .unwrap(),
        )
        .unwrap();
    let single_report = single.process_batch(&frames).unwrap();
    let single_saving = single_report.mean_power_saving();
    assert!(
        single_saving < 0.05,
        "the pooled worst-case curve should refuse to dim, saved {single_saving}"
    );

    // The per-class bank routes each shape to its own curve.
    let bank =
        CharacteristicBank::build(&open_loop_pipeline(), &histograms, &DEFAULT_RANGES, 3).unwrap();
    assert_eq!(bank.len(), 3, "three shapes make three classes");
    let banked = open_engine(3);
    banked.install_bank(bank).unwrap();
    let banked_report = banked.process_batch(&frames).unwrap();
    let banked_saving = banked_report.mean_power_saving();
    assert!(
        banked_saving >= closed_saving / 2.0,
        "per-class saving {banked_saving} recovers less than half of the \
         closed-loop {closed_saving}"
    );
    for result in &banked_report.results {
        assert!(
            result.outcome.distortion <= budget + 1e-9,
            "frame {}: the contract must hold, distortion {}",
            result.index,
            result.outcome.distortion
        );
    }
    let stats = banked.stats();
    assert!(stats.cache_misses > 0);
    assert!(
        stats.fit_evaluations <= stats.cache_misses,
        "{} evaluations for {} misses: the bank must keep open-loop economics",
        stats.fit_evaluations,
        stats.cache_misses
    );
}

/// Class-scoped invalidation, for both cache key modes: a drift-triggered
/// rebuild of one class bumps only that class's generation — its cached
/// fits are invalidated while the other class's fits keep replaying.
#[test]
fn class_rebuild_invalidates_only_its_own_class() {
    use hebs::imaging::synthetic;
    let budget = 0.10;
    let dark = synthetic::low_key(32, 32, 5);
    let bright = synthetic::high_key(32, 32, 6);
    let dark_signature = hebs::imaging::HistogramSignature::of(&Histogram::of(&dark));
    let bright_signature = hebs::imaging::HistogramSignature::of(&Histogram::of(&bright));

    // A lying curve for the dark class (promises zero distortion at every
    // range, so every open-loop fit lands over budget) and an accurate one
    // for the bright class.
    let lying: Vec<CharacterizationSample> = (0..6)
        .map(|i| CharacterizationSample {
            image: format!("lie{i}"),
            dynamic_range: 40 * (i + 1),
            distortion: 0.0,
            power_saving: 0.9,
        })
        .collect();
    let accurate = DistortionCharacteristic::characterize_from_histograms(
        &open_loop_pipeline(),
        std::slice::from_ref(&Histogram::of(&bright)),
        &DEFAULT_RANGES,
    )
    .unwrap();

    for cache in [CacheConfig::exact(), CacheConfig::approximate()] {
        let engine = Engine::new(
            histogram_policy(),
            EngineConfig {
                workers: 1,
                max_distortion: budget,
                cache: Some(cache),
                mode: ServingMode::OpenLoop {
                    recharacterize: RecharacterizePolicy {
                        interval: None,
                        drift_limit: Some(1),
                        sample_period: 1,
                        classes: 2,
                        ..RecharacterizePolicy::default()
                    },
                },
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let bank = CharacteristicBank::from_classes(vec![
            BankClass::centered_on(
                &dark_signature,
                std::sync::Arc::new(DistortionCharacteristic::from_samples(lying.clone()).unwrap()),
            ),
            BankClass::centered_on(&bright_signature, std::sync::Arc::new(accurate.clone())),
        ])
        .unwrap();
        engine.install_bank(bank).unwrap();
        let generation_before = engine.characteristic_generation();

        // Warm the bright class.
        assert!(!engine.process_frame(&bright).unwrap().cache_hit);
        assert!(engine.process_frame(&bright).unwrap().cache_hit);

        // One dark serve: the lying curve drifts (fallback keeps the
        // contract), trips the class's drift limit, and the rebuild from
        // the class's own sketch replaces only the dark class's curve.
        let drifted = engine.process_frame(&dark).unwrap();
        assert!(drifted.outcome.distortion <= budget + 1e-9);
        let stats = engine.stats();
        assert_eq!(stats.open_loop_fallbacks, 1, "the lying curve must drift");
        assert_eq!(
            stats.recharacterizations, 1,
            "the drift limit must rebuild the class"
        );
        assert!(engine.characteristic_generation() > generation_before);

        // The bright class's cached fit survives the dark rebuild...
        assert!(
            engine.process_frame(&bright).unwrap().cache_hit,
            "an untouched class's fits must keep replaying"
        );
        // ...while the dark class's fit (made under the lying curve's
        // generation) is invalidated and refit under the healed curve.
        let healed = engine.process_frame(&dark).unwrap();
        assert!(
            !healed.cache_hit,
            "the rebuilt class's stale fit must not replay"
        );
        assert!(engine.process_frame(&dark).unwrap().cache_hit);
        let final_stats = engine.stats();
        assert_eq!(
            final_stats.open_loop_fallbacks, 1,
            "the healed curve must not drift again"
        );
    }
}

/// The lookup fit is selectable: on heterogeneous traffic the p95 envelope
/// dims where the worst case refuses, without giving up the contract.
#[test]
fn envelope_fit_dims_heterogeneous_traffic_within_the_contract() {
    let frames: Vec<GrayImage> = SipiSuite::with_size(32)
        .iter()
        .map(|(_, img)| img.clone())
        .collect();
    let curve = characterize(&frames);
    let budget = 0.10;
    let serve = |fit: CurveFit| {
        let engine = Engine::new(
            histogram_policy(),
            EngineConfig {
                workers: 1,
                max_distortion: budget,
                cache: Some(CacheConfig::exact()),
                mode: ServingMode::OpenLoop {
                    recharacterize: RecharacterizePolicy {
                        interval: None,
                        drift_limit: None,
                        fit,
                        ..RecharacterizePolicy::default()
                    },
                },
                ..EngineConfig::default()
            },
        )
        .unwrap();
        engine.install_characteristic(curve.clone()).unwrap();
        let report = engine.process_batch(&frames).unwrap();
        for result in &report.results {
            assert!(
                result.outcome.distortion <= budget + 1e-9,
                "{fit:?}: contract broken at frame {}",
                result.index
            );
        }
        report.mean_power_saving()
    };
    let worst_case = serve(CurveFit::WorstCase);
    let envelope = serve(CurveFit::Envelope);
    assert!(
        envelope > worst_case,
        "envelope ({envelope}) should dim more than worst case ({worst_case})"
    );
}

/// Tenant isolation, for both cache key modes: two tenants sharing one
/// cache never replay each other's fits (the tenant id is a key
/// dimension), and one tenant's characteristic swap (generation bump)
/// invalidates only its own entries.
#[test]
fn tenants_share_a_cache_without_cross_tenant_replay_or_invalidation() {
    let frames: Vec<GrayImage> = SipiSuite::with_size(32)
        .iter()
        .take(3)
        .map(|(_, img)| img.clone())
        .collect();
    let open_loop = || ServingMode::OpenLoop {
        recharacterize: RecharacterizePolicy {
            interval: None,
            drift_limit: None,
            ..RecharacterizePolicy::default()
        },
    };
    for cache in [CacheConfig::exact(), CacheConfig::approximate()] {
        let registry = TenantRegistry::builder()
            .with_cache(cache)
            .tenant(
                histogram_policy(),
                TenantSpec::named("a")
                    .with_budget(0.10)
                    .with_mode(open_loop()),
            )
            .tenant(
                histogram_policy(),
                TenantSpec::named("b")
                    .with_budget(0.10)
                    .with_mode(open_loop()),
            )
            .build()
            .unwrap();
        let a = registry.id_of("a").unwrap();
        let b = registry.id_of("b").unwrap();
        let curve = characterize(&frames);
        registry
            .engine(a)
            .unwrap()
            .install_characteristic(curve.clone())
            .unwrap();
        registry
            .engine(b)
            .unwrap()
            .install_characteristic(curve.clone())
            .unwrap();
        let options = ServeOptions::default();

        // Same frame, same budget band, same curve content: tenant B must
        // still miss where tenant A would hit.
        let frame = &frames[0];
        assert!(!registry.serve(a, frame, &options).unwrap().cache_hit);
        assert!(registry.serve(a, frame, &options).unwrap().cache_hit);
        assert!(
            !registry.serve(b, frame, &options).unwrap().cache_hit,
            "a fit made for one tenant must never replay for another"
        );
        assert!(registry.serve(b, frame, &options).unwrap().cache_hit);

        // A characteristic swap on tenant A bumps only A's generation:
        // A's fit is invalidated, B's keeps replaying.
        registry
            .engine(a)
            .unwrap()
            .install_characteristic(curve.clone())
            .unwrap();
        assert!(
            !registry.serve(a, frame, &options).unwrap().cache_hit,
            "the swapping tenant's stale fit must not replay"
        );
        assert!(
            registry.serve(b, frame, &options).unwrap().cache_hit,
            "another tenant's swap must not invalidate this tenant's fits"
        );
    }
}

/// One tenant flooding the shared cache evicts only its *own* entries: the
/// byte budget is partitioned by weight, and each tenant's charge stays
/// within its slice while the quiet tenant's entry keeps replaying.
#[test]
fn tenant_evictions_stay_within_the_weighted_partition() {
    let frames: Vec<GrayImage> = SipiSuite::with_size(64)
        .iter()
        .take(6)
        .map(|(_, img)| img.clone())
        .collect();
    // ~8.5 KiB per 64x64 exact entry; a 40 KiB budget split 1:1 gives each
    // tenant a ~20 KiB slice (about two entries).
    let budget = 40 * 1024;
    let registry = TenantRegistry::builder()
        .with_cache(CacheConfig {
            shards: 1,
            byte_budget: Some(budget),
            ..CacheConfig::exact()
        })
        .tenant(policy(), TenantSpec::named("quiet"))
        .tenant(policy(), TenantSpec::named("flood"))
        .build()
        .unwrap();
    let quiet = registry.id_of("quiet").unwrap();
    let flood = registry.id_of("flood").unwrap();
    let options = ServeOptions::default();

    // The quiet tenant caches one frame.
    assert!(
        !registry
            .serve(quiet, &frames[0], &options)
            .unwrap()
            .cache_hit
    );
    let quiet_bytes = registry.tenant_bytes(quiet).unwrap();
    assert!(quiet_bytes > 0);

    // The flooding tenant serves far more than its slice holds.
    for frame in &frames {
        registry.serve(flood, frame, &options).unwrap();
        assert!(
            registry.tenant_bytes(flood).unwrap() <= budget / 2,
            "a tenant's resident bytes must stay within its slice"
        );
    }
    assert_eq!(
        registry.tenant_bytes(quiet).unwrap(),
        quiet_bytes,
        "the flood must charge (and evict) only its own partition"
    );
    assert!(
        registry
            .serve(quiet, &frames[0], &options)
            .unwrap()
            .cache_hit,
        "the quiet tenant's entry must survive a neighbour's flood"
    );
}

/// Shed and queue accounting reconcile with `EngineStats`: refused
/// arrivals count as sheds (not frames), released permits reopen the
/// bound, and per-tenant counters are independent.
#[test]
fn shed_counters_reconcile_with_engine_stats() {
    let registry = TenantRegistry::builder()
        .tenant(policy(), TenantSpec::named("tight").with_queue_limit(1))
        .tenant(policy(), TenantSpec::named("roomy"))
        .build()
        .unwrap();
    let tight = registry.id_of("tight").unwrap();
    let roomy = registry.id_of("roomy").unwrap();
    let frame = SipiSuite::with_size(24)
        .iter()
        .next()
        .map(|(_, img)| img.clone())
        .unwrap();
    let options = ServeOptions::default();

    let permit = registry.admit(tight).unwrap();
    for _ in 0..3 {
        assert!(matches!(
            registry.admit(tight),
            Err(RuntimeError::Shed { tenant: 0, .. })
        ));
    }
    registry
        .serve_with_permit(&permit, &frame, &options)
        .unwrap();
    drop(permit);
    registry.serve(tight, &frame, &options).unwrap();
    registry.serve(roomy, &frame, &options).unwrap();

    let tight_stats = registry.stats(tight).unwrap();
    assert_eq!(tight_stats.frames, 2, "sheds must not count as frames");
    assert_eq!(tight_stats.sheds, 3);
    assert_eq!(tight_stats.queue_depth, 0, "permits were all released");
    let roomy_stats = registry.stats(roomy).unwrap();
    assert_eq!(roomy_stats.frames, 1);
    assert_eq!(roomy_stats.sheds, 0);
}

/// Deadline-aware serving: a frame already past its deadline skips the
/// closed-loop drift recheck and serves the installed curve directly
/// (counted in `deadline_degraded`); the degraded fit is *not* cached, so
/// a later unhurried serve of the same frame re-fits under the contract.
#[test]
fn past_due_serves_degrade_to_the_installed_curve_without_poisoning_the_cache() {
    use std::time::{Duration, Instant};
    // A lying curve (promises zero distortion everywhere) makes every
    // open-loop fit land over budget, forcing the drift decision point.
    let lying: Vec<CharacterizationSample> = (0..6)
        .map(|i| CharacterizationSample {
            image: format!("lie{i}"),
            dynamic_range: 40 * (i + 1),
            distortion: 0.0,
            power_saving: 0.9,
        })
        .collect();
    let engine = Engine::new(
        histogram_policy(),
        EngineConfig {
            workers: 1,
            max_distortion: 0.10,
            cache: Some(CacheConfig::exact()),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    interval: None,
                    drift_limit: None,
                    ..RecharacterizePolicy::default()
                },
            },
            ..EngineConfig::default()
        },
    )
    .unwrap();
    engine
        .install_characteristic(DistortionCharacteristic::from_samples(lying).unwrap())
        .unwrap();
    let frame = SipiSuite::with_size(32)
        .iter()
        .next()
        .map(|(_, img)| img.clone())
        .unwrap();

    // Past-due: the over-budget open-loop fit is served as-is.
    let late = ServeOptions::default().with_deadline(Instant::now() - Duration::from_secs(1));
    let degraded = engine.process_frame_with_options(&frame, &late).unwrap();
    assert!(!degraded.cache_hit);
    let stats = engine.stats();
    assert_eq!(stats.deadline_degraded, 1);
    assert_eq!(
        stats.open_loop_fallbacks, 0,
        "a degraded serve skips the closed-loop fallback"
    );
    assert_eq!(
        stats.fit_evaluations, 1,
        "the degraded path costs exactly the one open-loop evaluation"
    );

    // The degraded fit must not have been cached: an unhurried serve of
    // the same frame misses, falls back closed-loop, and honours the
    // budget.
    let relaxed = ServeOptions::default().with_deadline(Instant::now() + Duration::from_secs(60));
    let honoured = engine.process_frame_with_options(&frame, &relaxed).unwrap();
    assert!(
        !honoured.cache_hit,
        "an over-budget degraded fit must never be cached"
    );
    assert!(honoured.outcome.distortion <= 0.10 + 1e-9);
    let stats = engine.stats();
    assert_eq!(
        stats.deadline_degraded, 1,
        "an unexpired deadline is a no-op"
    );
    assert_eq!(stats.open_loop_fallbacks, 1);

    // The honoured fit *was* cached and replays.
    assert!(engine.process_frame(&frame).unwrap().cache_hit);
}

/// `Engine::stream_scoped` accepts a producer borrowing from the caller's
/// stack (no `'static` bound) and agrees with batching.
#[test]
fn scoped_streaming_serves_borrowed_producers() {
    let frames: Vec<GrayImage> = FrameSequence::new(SceneKind::Static, 24, 24, 8, 11)
        .frames()
        .collect();
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 2,
            queue_depth: 2,
            cache: None,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let streamed: Vec<_> = std::thread::scope(|scope| {
        // `frames.iter().cloned()` borrows `frames`: this does not compile
        // against the `'static` bound of `Engine::stream`.
        engine
            .stream_scoped(scope, frames.iter().cloned())
            .collect::<hebs::runtime::Result<Vec<_>>>()
    })
    .unwrap();
    let batched = engine.process_batch(&frames).unwrap();
    assert_eq!(streamed.len(), batched.frames());
    for (s, b) in streamed.iter().zip(&batched.results) {
        assert_eq!(s.index, b.index);
        assert_outcomes_bit_identical(&s.outcome, &b.outcome, &format!("frame {}", s.index));
    }
}

/// Streaming and batching agree on the same input.
#[test]
fn streaming_agrees_with_batching() {
    let frames: Vec<GrayImage> = FrameSequence::new(SceneKind::FadeToBlack, 32, 32, 10, 9)
        .frames()
        .collect();
    let engine = Engine::new(
        policy(),
        EngineConfig {
            workers: 3,
            queue_depth: 2,
            cache: None,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let streamed: Vec<_> = engine
        .stream(frames.clone())
        .collect::<hebs::runtime::Result<Vec<_>>>()
        .unwrap();
    let batched = engine.process_batch(&frames).unwrap();
    assert_eq!(streamed.len(), batched.frames());
    for (s, b) in streamed.iter().zip(&batched.results) {
        assert_eq!(s.index, b.index);
        assert_outcomes_bit_identical(&s.outcome, &b.outcome, &format!("frame {}", s.index));
    }
}
