//! Property-based integration tests on the cross-crate invariants of the
//! HEBS pipeline: monotonicity of the compiled hardware tables, bounds on
//! distortion and power saving, and determinism of the whole flow, for
//! randomly generated images and parameters.
//!
//! The cases are generated with the workspace's own deterministic PRNG
//! (`hebs::imaging::rng`) instead of an external property-testing crate, so
//! the suite runs in the offline build; every failure is reproducible from
//! the fixed seeds below.

use hebs::core::ghe::{equalize, TargetRange};
use hebs::core::pipeline::{evaluate_at_range, evaluate_range_from_histogram, fit_transform};
use hebs::core::PipelineConfig;
use hebs::display::plrd::HierarchicalPlrd;
use hebs::imaging::rng::StdRng;
use hebs::imaging::{GrayImage, Histogram};
use hebs::quality::{
    ContrastMeasure, DistortionMeasure, GlobalUiqiDistortion, HebsDistortion, PixelDistortion,
};
use hebs::transform::{coarsen, PixelTransform};

const CASES: usize = 32;

/// A small random image with an arbitrary pixel distribution.
fn arbitrary_image(rng: &mut StdRng) -> GrayImage {
    let width = rng.random_range(8..24u32);
    let height = rng.random_range(8..24u32);
    GrayImage::from_fn(width, height, |_, _| rng.random_range(0..=255u8))
}

#[test]
fn ghe_transform_is_always_monotone() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let image = arbitrary_image(&mut rng);
        let span = rng.random_range(2..=256u32);
        let hist = Histogram::of(&image);
        let target = TargetRange::from_span(span).expect("valid span");
        let solution = equalize(&hist, target).expect("equalize runs");
        assert!(
            solution.transform.to_lut().is_monotone(),
            "case {case}: non-monotone GHE transform for span {span}"
        );
        // Output stays inside the requested band.
        assert!(
            solution.transform.evaluate(1.0) <= f64::from(target.g_max()) / 255.0 + 1e-9,
            "case {case}"
        );
        assert!(
            solution.transform.evaluate(0.0) >= f64::from(target.g_min()) / 255.0 - 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn coarsened_ghe_curves_stay_within_the_driver_budget() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let image = arbitrary_image(&mut rng);
        let span = rng.random_range(16..=256u32);
        let segments = rng.random_range(2..=12usize);
        let hist = Histogram::of(&image);
        let target = TargetRange::from_span(span).expect("valid span");
        let solution = equalize(&hist, target).expect("equalize runs");
        let coarse = coarsen(&solution.transform, segments).expect("coarsen runs");
        assert!(
            coarse.curve.segment_count() <= segments,
            "case {case}: {} segments exceed budget {segments}",
            coarse.curve.segment_count()
        );
        assert!(coarse.squared_error >= 0.0, "case {case}");
        // The coarse curve can always be programmed into a driver with
        // enough sources.
        let driver = HierarchicalPlrd::new(segments + 1, 10).expect("valid driver");
        let programmed = driver
            .program(&coarse.curve, target.backlight_factor())
            .expect("programming succeeds");
        assert!(programmed.lut.is_monotone(), "case {case}");
    }
}

#[test]
fn pipeline_outputs_are_bounded_and_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    // The full pipeline is the slowest invariant to check; a quarter of the
    // cases keeps the suite fast while still varying size and range.
    for case in 0..CASES / 4 {
        let image = arbitrary_image(&mut rng);
        let span = rng.random_range(32..=256u32);
        let config = PipelineConfig::default();
        let target = TargetRange::from_span(span).expect("valid span");
        let a = evaluate_at_range(&config, &image, target).expect("pipeline runs");
        let b = evaluate_at_range(&config, &image, target).expect("pipeline runs");
        assert!((0.0..=1.0).contains(&a.distortion), "case {case}");
        assert!(a.power_saving < 1.0, "case {case}");
        assert!(a.beta() > 0.0 && a.beta() <= 1.0, "case {case}");
        // Determinism of the full flow.
        assert_eq!(a.distortion, b.distortion, "case {case}");
        assert_eq!(a.power_saving, b.power_saving, "case {case}");
        assert_eq!(a.lut().entries(), b.lut().entries(), "case {case}");
    }
}

#[test]
fn distortion_measure_is_a_premetric() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for case in 0..CASES {
        let image = arbitrary_image(&mut rng);
        let shift = rng.random_range(0..60u8);
        let measure = HebsDistortion::default();
        // Identity of indiscernibles (one direction) and non-negativity.
        assert!(measure.distortion(&image, &image) < 1e-9, "case {case}");
        let shifted = image.map(|v| v.saturating_add(shift));
        let d = measure.distortion(&image, &shifted);
        assert!((0.0..=1.0).contains(&d), "case {case}");
        // Symmetry of the underlying index.
        let d_rev = measure.distortion(&shifted, &image);
        assert!((d - d_rev).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn histogram_and_pixel_distortion_agree_on_random_frames() {
    // The tentpole parity property: for every histogram-capable measure,
    // evaluating a real fitted transform in the histogram domain must match
    // measuring the materialized displayed image, across random frames and
    // target ranges.
    let mut rng = StdRng::seed_from_u64(0x415C0);
    let config = PipelineConfig::default();
    let measures: Vec<Box<dyn DistortionMeasure>> = vec![
        Box::new(PixelDistortion),
        Box::new(GlobalUiqiDistortion),
        Box::new(ContrastMeasure),
    ];
    for case in 0..CASES / 2 {
        let image = arbitrary_image(&mut rng);
        let span = rng.random_range(16..=256u32);
        let weight = f64::from(rng.random_range(0..=4u8)) / 4.0;
        let hist = Histogram::of(&image);
        let target = TargetRange::from_span(span).expect("valid span");
        let transform = fit_transform(&config, &hist, target, weight).expect("fit runs");
        let displayed = transform.response.apply(&image);
        for measure in &measures {
            let pixel = measure.distortion(&image, &displayed);
            let level = measure
                .distortion_from_levels(&hist, transform.response.levels())
                .expect("measure is histogram-capable");
            assert!(
                (pixel - level).abs() <= 1e-9,
                "case {case} span {span} weight {weight} {}: pixel {pixel} vs level {level}",
                measure.name()
            );
        }
    }
}

#[test]
fn level_space_search_matches_pixel_space_search() {
    // With a histogram-capable measure the level-space fit entry point must
    // agree with the full materializing evaluation on every random frame.
    let mut rng = StdRng::seed_from_u64(0xFA57);
    let config = PipelineConfig::default().with_measure(GlobalUiqiDistortion);
    for case in 0..CASES / 4 {
        let image = arbitrary_image(&mut rng);
        let span = rng.random_range(16..=256u32);
        let target = TargetRange::from_span(span).expect("valid span");
        let level = evaluate_range_from_histogram(&config, &Histogram::of(&image), target)
            .expect("pipeline runs")
            .expect("global UIQI is histogram-capable");
        let full = evaluate_at_range(&config, &image, target).expect("pipeline runs");
        assert_eq!(level.distortion, full.distortion, "case {case}");
        assert_eq!(level.power_saving, full.power_saving, "case {case}");
        assert_eq!(
            level.transform.lut.entries(),
            full.lut().entries(),
            "case {case}"
        );
    }
}
