//! Property-based integration tests on the cross-crate invariants of the
//! HEBS pipeline: monotonicity of the compiled hardware tables, bounds on
//! distortion and power saving, and determinism of the whole flow, for
//! randomly generated images and parameters.

use proptest::prelude::*;

use hebs::core::ghe::{equalize, TargetRange};
use hebs::core::{pipeline::evaluate_at_range, PipelineConfig};
use hebs::display::plrd::HierarchicalPlrd;
use hebs::imaging::{GrayImage, Histogram};
use hebs::quality::{DistortionMeasure, HebsDistortion};
use hebs::transform::{coarsen, PixelTransform};

/// Strategy: a small random image with an arbitrary pixel distribution.
fn arbitrary_image() -> impl Strategy<Value = GrayImage> {
    (8u32..24, 8u32..24, proptest::collection::vec(any::<u8>(), 24 * 24))
        .prop_map(|(w, h, data)| {
            GrayImage::from_fn(w, h, |x, y| data[(y * w + x) as usize % data.len()])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ghe_transform_is_always_monotone(image in arbitrary_image(), span in 2u32..=256) {
        let hist = Histogram::of(&image);
        let target = TargetRange::from_span(span).expect("valid span");
        let solution = equalize(&hist, target).expect("equalize runs");
        prop_assert!(solution.transform.to_lut().is_monotone());
        // Output stays inside the requested band.
        prop_assert!(solution.transform.evaluate(1.0) <= f64::from(target.g_max()) / 255.0 + 1e-9);
        prop_assert!(solution.transform.evaluate(0.0) >= f64::from(target.g_min()) / 255.0 - 1e-9);
    }

    #[test]
    fn coarsened_ghe_curves_stay_within_the_driver_budget(
        image in arbitrary_image(),
        span in 16u32..=256,
        segments in 2usize..=12,
    ) {
        let hist = Histogram::of(&image);
        let target = TargetRange::from_span(span).expect("valid span");
        let solution = equalize(&hist, target).expect("equalize runs");
        let coarse = coarsen(&solution.transform, segments).expect("coarsen runs");
        prop_assert!(coarse.curve.segment_count() <= segments);
        prop_assert!(coarse.squared_error >= 0.0);
        // The coarse curve can always be programmed into a driver with
        // enough sources.
        let driver = HierarchicalPlrd::new(segments + 1, 10).expect("valid driver");
        let programmed = driver
            .program(&coarse.curve, target.backlight_factor())
            .expect("programming succeeds");
        prop_assert!(programmed.lut.is_monotone());
    }

    #[test]
    fn pipeline_outputs_are_bounded_and_deterministic(
        image in arbitrary_image(),
        span in 32u32..=256,
    ) {
        let config = PipelineConfig::default();
        let target = TargetRange::from_span(span).expect("valid span");
        let a = evaluate_at_range(&config, &image, target).expect("pipeline runs");
        let b = evaluate_at_range(&config, &image, target).expect("pipeline runs");
        prop_assert!((0.0..=1.0).contains(&a.distortion));
        prop_assert!(a.power_saving < 1.0);
        prop_assert!(a.beta > 0.0 && a.beta <= 1.0);
        // Determinism of the full flow.
        prop_assert_eq!(a.distortion, b.distortion);
        prop_assert_eq!(a.power_saving, b.power_saving);
        prop_assert_eq!(a.lut.entries(), b.lut.entries());
    }

    #[test]
    fn distortion_measure_is_a_premetric(image in arbitrary_image(), shift in 0u8..60) {
        let measure = HebsDistortion::default();
        // Identity of indiscernibles (one direction) and non-negativity.
        prop_assert!(measure.distortion(&image, &image) < 1e-9);
        let shifted = image.map(|v| v.saturating_add(shift));
        let d = measure.distortion(&image, &shifted);
        prop_assert!((0.0..=1.0).contains(&d));
        // Symmetry of the underlying index.
        let d_rev = measure.distortion(&shifted, &image);
        prop_assert!((d - d_rev).abs() < 1e-9);
    }
}
