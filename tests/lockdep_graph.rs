//! Lockdep regression tests on the runtime's *real* lock-class graph.
//!
//! The unit tests in `hebs-analysis` prove the checker mechanics on
//! synthetic locks; these tests pin the rank assignments the runtime
//! actually relies on — cache shards (rank 40) are taken before
//! single-flight shards (rank 50), stats/bookkeeping locks (rank 60) are
//! always last — and that a deliberate inversion of the cache-shard /
//! single-flight order panics naming both acquisition sites.
//!
//! Lockdep only checks under `debug_assertions` or the `lockdep` feature;
//! without either the wrappers are plain `std::sync` types and these tests
//! compile to nothing.
#![cfg(any(debug_assertions, feature = "lockdep"))]

use hebs::runtime::analysis::{lock_healthy, LockClass, OrderedMutex};

/// Runs `f` on a fresh thread and returns the panic message it died with.
fn panic_message_of(f: impl FnOnce() + Send + 'static) -> String {
    let err = std::thread::spawn(f)
        .join()
        .expect_err("the closure must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a string")
}

/// The declared serve-path order — cache shard, then single-flight shard,
/// then a stats lock — passes lockdep cleanly.
#[test]
fn declared_serve_path_order_is_clean() {
    let shard = OrderedMutex::new(LockClass::CacheShard, 0u32);
    let flight = OrderedMutex::new(LockClass::FlightTable, 0u32);
    let stats = OrderedMutex::new(LockClass::Stats, 0u32);
    let a = lock_healthy(shard.lock(), || {});
    let b = lock_healthy(flight.lock(), || {});
    let c = lock_healthy(stats.lock(), || {});
    drop((a, b, c));
}

/// Holding a single-flight shard lock while acquiring a cache shard — the
/// inversion of the runtime's declared order, which could deadlock against
/// a serve holding the shard while joining the flight — panics, and the
/// report names both acquisition sites so the cycle is actionable.
#[test]
fn inverted_flight_then_cache_shard_panics_naming_both_sites() {
    let message = panic_message_of(|| {
        let flight = OrderedMutex::new(LockClass::FlightTable, 0u32);
        let shard = OrderedMutex::new(LockClass::CacheShard, 0u32);
        let _flight_guard = lock_healthy(flight.lock(), || {});
        let _shard_guard = lock_healthy(shard.lock(), || {}); // inversion: 40 under 50
    });
    assert!(
        message.contains("lock-order inversion"),
        "unexpected panic: {message}"
    );
    assert!(
        message.contains("CacheShard"),
        "unexpected panic: {message}"
    );
    assert!(
        message.contains("FlightTable"),
        "unexpected panic: {message}"
    );
    assert_eq!(
        message.matches("lockdep_graph.rs").count(),
        2,
        "both acquisition sites must be named: {message}"
    );
}

/// The full declared rank ladder stays monotone: every runtime class can
/// be acquired while holding every lower-ranked one.
#[test]
fn full_rank_ladder_is_acquirable_in_declared_order() {
    let ladder = [
        OrderedMutex::new(LockClass::TenantRegistry, ()),
        OrderedMutex::new(LockClass::Sketch, ()),
        OrderedMutex::new(LockClass::OpenLoopSlot, ()),
        OrderedMutex::new(LockClass::CacheShard, ()),
        OrderedMutex::new(LockClass::FlightTable, ()),
        OrderedMutex::new(LockClass::Stats, ()),
    ];
    let guards: Vec<_> = ladder
        .iter()
        .map(|lock| lock_healthy(lock.lock(), || {}))
        .collect();
    drop(guards);
}

/// A stats lock (the highest rank) must never be held while entering the
/// serve path: taking a cache shard under it panics.
#[test]
fn serve_under_a_stats_lock_panics() {
    let message = panic_message_of(|| {
        let stats = OrderedMutex::new(LockClass::Stats, ());
        let shard = OrderedMutex::new(LockClass::CacheShard, ());
        let _stats_guard = lock_healthy(stats.lock(), || {});
        let _shard_guard = lock_healthy(shard.lock(), || {});
    });
    assert!(
        message.contains("lock-order inversion"),
        "unexpected panic: {message}"
    );
}
