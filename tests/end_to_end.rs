//! End-to-end integration tests spanning every crate of the workspace: from
//! synthetic image generation through the HEBS policy, the reference-driver
//! hardware model and the power accounting, checking the result *shapes* the
//! paper reports.

use hebs::core::pipeline::evaluate_at_range;
use hebs::core::{
    BacklightPolicy, CbcsPolicy, DistortionCharacteristic, DlsPolicy, DlsVariant, HebsPolicy,
    PipelineConfig, TargetRange,
};
use hebs::imaging::{SipiImage, SipiSuite};
use hebs::quality::{DistortionMeasure, HebsDistortion};

fn small_suite() -> SipiSuite {
    SipiSuite::with_size(64)
}

#[test]
fn closed_loop_hebs_meets_the_budget_on_every_suite_image() {
    let suite = small_suite();
    let policy = HebsPolicy::closed_loop(PipelineConfig::default());
    for (id, image) in suite.iter() {
        let outcome = policy.optimize(image, 0.10).expect("policy runs");
        assert!(
            outcome.distortion <= 0.10 + 1e-9,
            "{id}: distortion {} exceeds the budget",
            outcome.distortion
        );
        assert!(
            outcome.power_saving >= 0.0 && outcome.power_saving < 1.0,
            "{id}: implausible saving {}",
            outcome.power_saving
        );
        assert!(outcome.lut.is_monotone(), "{id}: non-monotone hardware LUT");
    }
}

#[test]
fn average_savings_grow_with_the_distortion_budget() {
    let suite = small_suite();
    let policy = HebsPolicy::closed_loop(PipelineConfig::default());
    let mut previous = -1.0;
    for budget in [0.05, 0.10, 0.20] {
        let mean: f64 = suite
            .iter()
            .map(|(_, image)| {
                policy
                    .optimize(image, budget)
                    .expect("policy runs")
                    .power_saving
            })
            .sum::<f64>()
            / suite.len() as f64;
        assert!(
            mean > previous,
            "mean saving {mean} did not grow at budget {budget}"
        );
        previous = mean;
    }
    // At a 20% budget the suite average should be a substantial saving.
    assert!(previous > 0.35, "20% budget only saved {previous}");
}

#[test]
fn hebs_beats_the_baselines_on_average() {
    let suite = small_suite();
    let budget = 0.10;
    let hebs = HebsPolicy::closed_loop(PipelineConfig::default());
    let cbcs = CbcsPolicy::new();
    let dls = DlsPolicy::new(DlsVariant::ContrastEnhancement);

    let mut hebs_total = 0.0;
    let mut cbcs_total = 0.0;
    let mut dls_total = 0.0;
    for (_, image) in suite.iter() {
        hebs_total += hebs
            .optimize(image, budget)
            .expect("hebs runs")
            .power_saving;
        cbcs_total += cbcs
            .optimize(image, budget)
            .expect("cbcs runs")
            .power_saving;
        dls_total += dls.optimize(image, budget).expect("dls runs").power_saving;
    }
    assert!(
        hebs_total > cbcs_total,
        "HEBS total {hebs_total} not above CBCS {cbcs_total}"
    );
    assert!(
        hebs_total > dls_total,
        "HEBS total {hebs_total} not above DLS {dls_total}"
    );
}

#[test]
fn open_loop_flow_matches_the_paper_architecture() {
    // Characterize on one half of the suite, deploy on the other half —
    // the open-loop lookup must produce sensible settings for unseen images.
    let suite = small_suite();
    let config = PipelineConfig::default();
    let calibration: Vec<(&str, &hebs::imaging::GrayImage)> = suite
        .entries()
        .iter()
        .take(10)
        .map(|(id, img)| (id.name(), img))
        .collect();
    let characteristic =
        DistortionCharacteristic::characterize(&config, calibration, &[60, 120, 180, 240])
            .expect("characterization runs");
    let policy = HebsPolicy::open_loop(config, characteristic, true);
    for (id, image) in suite.entries().iter().skip(10) {
        let outcome = policy.optimize(image, 0.15).expect("open-loop policy runs");
        assert!(
            outcome.beta > 0.1 && outcome.beta <= 1.0,
            "{id}: beta {}",
            outcome.beta
        );
        assert!(outcome.power_saving >= 0.0, "{id}: negative saving");
    }
}

#[test]
fn distortion_grows_and_beta_falls_as_the_range_shrinks() {
    let config = PipelineConfig::default();
    let image = SipiImage::Peppers.generate(64);
    let mut previous_distortion = -1.0;
    let mut previous_beta = 2.0;
    for range in [240u32, 180, 120, 60] {
        let eval = evaluate_at_range(&config, &image, TargetRange::from_span(range).unwrap())
            .expect("pipeline runs");
        assert!(
            eval.distortion >= previous_distortion - 0.02,
            "distortion not (approximately) monotone at range {range}"
        );
        assert!(
            eval.beta() < previous_beta,
            "beta not decreasing at range {range}"
        );
        previous_distortion = eval.distortion;
        previous_beta = eval.beta();
    }
}

#[test]
fn displayed_image_is_what_the_distortion_was_measured_against() {
    // Consistency across crates: re-measuring the distortion of the outcome's
    // displayed image with the same measure reproduces the reported number.
    let image = SipiImage::Girl.generate(64);
    let policy = HebsPolicy::closed_loop(PipelineConfig::default());
    let outcome = policy.optimize(&image, 0.10).expect("policy runs");
    let measure = HebsDistortion::default();
    let recomputed = measure.distortion(&image, &outcome.displayed);
    assert!((recomputed - outcome.distortion).abs() < 1e-9);
}

#[test]
fn full_subsystem_power_accounting_is_internally_consistent() {
    let image = SipiImage::Trees.generate(64);
    let policy = HebsPolicy::closed_loop(PipelineConfig::default());
    let outcome = policy.optimize(&image, 0.20).expect("policy runs");
    let lcd = hebs::display::LcdSubsystem::lp064v1();
    let baseline = lcd.power(&image, 1.0).expect("power model runs").total();
    let implied_saving = 1.0 - outcome.power.total() / baseline;
    assert!((implied_saving - outcome.power_saving).abs() < 1e-9);
    // At full backlight the CCFL dominates the subsystem; after dimming its
    // share can only have gone down.
    let full = lcd.power(&image, 1.0).expect("power model runs");
    assert!(full.backlight_share() > 0.6);
    assert!(outcome.power.backlight_share() <= full.backlight_share());
}
