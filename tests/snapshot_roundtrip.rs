//! Snapshot round-trip properties at the workspace level: a restored
//! engine is *indistinguishable* from the canary it was saved from —
//! identical serve outcomes across bank sizes and budgets — and every
//! corrupted byte stream degrades to cold-start with a typed error.

use hebs::core::{CharacteristicBank, CurveFit, HebsPolicy, PipelineConfig, DEFAULT_RANGES};
use hebs::imaging::{GrayImage, Histogram, SipiSuite};
use hebs::quality::GlobalUiqiDistortion;
use hebs::runtime::{
    CacheConfig, Engine, EngineConfig, RecharacterizePolicy, RuntimeError, ServingMode,
};

/// The histogram-capable pipeline open-loop serving characterizes with.
fn pipeline() -> PipelineConfig {
    PipelineConfig::default().with_measure(GlobalUiqiDistortion)
}

/// A single-worker open-loop engine that only serves what it is given:
/// no periodic or drift-triggered recharacterization, so any behavioural
/// difference between canary and restoree comes from the snapshot alone.
fn engine(budget: f64, classes: usize, cache: Option<CacheConfig>) -> Engine {
    Engine::new(
        HebsPolicy::closed_loop(pipeline()),
        EngineConfig {
            workers: 1,
            max_distortion: budget,
            cache,
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    interval: None,
                    drift_limit: None,
                    fit: CurveFit::Envelope,
                    classes,
                    ..RecharacterizePolicy::default()
                },
            },
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

fn frames(size: u32) -> Vec<GrayImage> {
    SipiSuite::with_size(size)
        .iter()
        .map(|(_, img)| img.clone())
        .collect()
}

fn characterized(budget: f64, classes: usize, cache: Option<CacheConfig>) -> Engine {
    let canary = engine(budget, classes, cache);
    let histograms: Vec<Histogram> = frames(32).iter().map(Histogram::of).collect();
    let bank = CharacteristicBank::build(&pipeline(), &histograms, &DEFAULT_RANGES, classes)
        .expect("bank characterization");
    canary.install_bank(bank).expect("bank install");
    canary
}

fn snapshot(engine: &Engine) -> Vec<u8> {
    let mut bytes = Vec::new();
    engine.snapshot_to_writer(&mut bytes).expect("snapshot");
    bytes
}

/// Across bank sizes and budgets, a restored engine must reproduce the
/// canary's serve outcomes *exactly* — same backlight factor, saving and
/// distortion on every frame — and replay its install generations.
#[test]
fn restored_engines_serve_identically_to_their_canary() {
    for classes in [1, 2, 3] {
        for budget in [0.05, 0.10, 0.20] {
            // No cache on either side: every serve goes through the bank,
            // so equality below is curve-prediction equality, not cache
            // replay.
            let canary = characterized(budget, classes, None);
            let bytes = snapshot(&canary);

            let fleet = engine(budget, classes, None);
            let report = fleet.restore_from_reader(&mut &bytes[..]).unwrap();
            assert_eq!(report.classes, classes, "classes={classes} budget={budget}");
            assert_eq!(
                fleet.characteristic_generation(),
                canary.characteristic_generation(),
                "a fresh restore replays the canary's install order"
            );

            // Day-2 traffic the canary never characterized on.
            for (index, frame) in frames(48).iter().enumerate() {
                let canary_result = canary.process_frame(frame).unwrap();
                let fleet_result = fleet.process_frame(frame).unwrap();
                let label = format!("classes={classes} budget={budget} frame={index}");
                assert_eq!(
                    canary_result.outcome.beta.to_bits(),
                    fleet_result.outcome.beta.to_bits(),
                    "beta diverged: {label}"
                );
                assert_eq!(
                    canary_result.outcome.power_saving.to_bits(),
                    fleet_result.outcome.power_saving.to_bits(),
                    "saving diverged: {label}"
                );
                assert_eq!(
                    canary_result.outcome.distortion.to_bits(),
                    fleet_result.outcome.distortion.to_bits(),
                    "distortion diverged: {label}"
                );
            }
            assert_eq!(
                canary.stats().fit_evaluations,
                fleet.stats().fit_evaluations,
                "the restored bank must cost what the canary's does"
            );
        }
    }
}

/// Every corrupted variant of a valid snapshot — truncated anywhere,
/// bit-flipped anywhere — is rejected with a typed snapshot error, bumps
/// the rejection counter, and leaves the engine serving (cold, not
/// wedged).
#[test]
fn corrupted_snapshots_degrade_to_cold_start_not_panic() {
    let canary = characterized(0.10, 2, Some(CacheConfig::exact()));
    for frame in frames(32).iter().take(4) {
        canary.process_frame(frame).unwrap();
    }
    let bytes = snapshot(&canary);

    let mut corruptions: Vec<(String, Vec<u8>)> = Vec::new();
    for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
        corruptions.push((format!("truncated to {cut}"), bytes[..cut].to_vec()));
    }
    for offset in (0..bytes.len()).step_by((bytes.len() / 8).max(1)) {
        let mut mutated = bytes.clone();
        mutated[offset] ^= 0x40;
        corruptions.push((format!("bit-flipped at {offset}"), mutated));
    }

    for (label, corrupt) in corruptions {
        let fleet = engine(0.10, 2, Some(CacheConfig::exact()));
        let err = fleet
            .restore_from_reader(&mut &corrupt[..])
            .expect_err(&format!("{label}: corrupt snapshot must not restore"));
        assert!(
            matches!(err, RuntimeError::Snapshot(_)),
            "{label}: expected a typed snapshot error, got {err}"
        );
        assert_eq!(fleet.stats().snapshot_rejected, 1, "{label}");
        assert_eq!(
            fleet.characteristic_classes(),
            0,
            "{label}: no partial bank may be installed"
        );
        // Cold-start degradation: the engine still serves closed-loop.
        let result = fleet.process_frame(&frames(32)[0]).unwrap();
        assert!(result.outcome.power_saving >= 0.0, "{label}");
    }
}
