//! Deterministic interleaving stress: the runtime's race-prone invariant
//! tests replayed under a bank of seeded yield schedules.
//!
//! The runtime carries `analysis::interleave::point` yield points at its
//! race-prone seams (single-flight join/wake/release, cache insert-evict,
//! generation-swap claim, tenant admission). Each seed drives a different
//! deterministic perturbation of the thread interleaving through those
//! points, so one test binary exercises many distinct schedules of the
//! same scenario instead of whatever the scheduler happens to produce.
//! In release builds (without the `lockdep`/debug-assertions points) the
//! scenarios still run once each, unperturbed.

use hebs::imaging::{GrayImage, SipiSuite};
use hebs::runtime::analysis::interleave;
use hebs::runtime::{
    CacheConfig, Engine, EngineConfig, RuntimeError, ServeOptions, TenantRegistry, TenantSpec,
};

/// The seeded schedules every scenario is replayed under.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Every `interleave::point` name in the runtime, in sorted order. The
/// lint's yield-coverage pass cross-checks this manifest against the
/// library source in both directions: a point missing here fails the
/// lint (a seam with no schedule coverage), and an entry with no
/// matching point fails too (a replay that stopped exercising anything).
const COVERED_POINTS: [&str; 9] = [
    "cache.get_after_wait",
    "cache.insert_evict",
    "flight.join",
    "flight.release",
    "flight.woke",
    "openloop.begin_rebuild",
    "openloop.swap",
    "snapshot.restore",
    "tenant.admit",
];

/// The manifest stays sorted and duplicate-free, so diffs against the
/// lint's report are one-to-one.
#[test]
fn covered_points_manifest_is_sorted_and_unique() {
    for pair in COVERED_POINTS.windows(2) {
        assert!(
            pair[0] < pair[1],
            "COVERED_POINTS out of order or duplicated at `{}` / `{}`",
            pair[0],
            pair[1]
        );
    }
}

fn policy() -> hebs::core::HebsPolicy {
    hebs::core::HebsPolicy::closed_loop(hebs::core::PipelineConfig::default())
}

fn suite_frame(size: u32) -> GrayImage {
    SipiSuite::with_size(size)
        .iter()
        .next()
        .map(|(_, img)| img.clone())
        .unwrap()
}

/// Runs `scenario` once per seed (or once with no perturbation when the
/// interleaving points are compiled out), labelling failures with the seed
/// that produced them so a failing schedule can be replayed exactly.
fn replay_seeds(scenario: impl Fn(u64)) {
    if !interleave::is_enabled() {
        scenario(0);
        return;
    }
    for seed in SEEDS {
        interleave::set_seed(Some(seed));
        scenario(seed);
    }
    interleave::set_seed(None);
}

/// The single-flight storm invariant (one fit per concurrent miss storm,
/// counters reconciled) must hold under every seeded schedule: the seeds
/// shuffle who reaches `flight.join` first, who wakes between the leader's
/// insert and its `flight.release` notify, and when the waiters re-probe.
#[test]
fn single_flight_storm_holds_under_seeded_schedules() {
    replay_seeds(|seed| {
        let engine = Engine::new(
            policy(),
            EngineConfig {
                workers: 1,
                cache: Some(CacheConfig::exact()),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let frame = suite_frame(48);
        let storm = 6u64;
        let barrier = std::sync::Barrier::new(storm as usize);
        std::thread::scope(|scope| {
            for _ in 0..storm {
                let engine = engine.clone();
                let frame = &frame;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    engine.process_frame(frame).unwrap();
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.frames, storm, "seed {seed}");
        assert_eq!(
            stats.cache_misses, 1,
            "seed {seed}: exactly one fit must run"
        );
        assert_eq!(stats.cache_hits, storm - 1, "seed {seed}");
        assert!(stats.cache_coalesced < storm, "seed {seed}");
        let counters = engine.cache_counters().unwrap();
        assert_eq!(counters.hits, stats.cache_hits, "seed {seed}");
        assert_eq!(counters.misses, stats.cache_misses, "seed {seed}");
        assert_eq!(counters.coalesced, stats.cache_coalesced, "seed {seed}");
        assert_eq!(
            stats.poison_recoveries, 0,
            "seed {seed}: no lock was poisoned"
        );
    });
}

/// Admission-control accounting (sheds never count as frames, released
/// permits reopen the bound, per-tenant counters stay independent) must
/// hold under every seeded schedule of concurrent arrivals racing the
/// `tenant.admit` yield point.
#[test]
fn weighted_shed_accounting_holds_under_seeded_schedules() {
    replay_seeds(|seed| {
        let registry = TenantRegistry::builder()
            .tenant(policy(), TenantSpec::named("tight").with_queue_limit(1))
            .tenant(policy(), TenantSpec::named("roomy"))
            .build()
            .unwrap();
        let tight = registry.id_of("tight").unwrap();
        let roomy = registry.id_of("roomy").unwrap();
        let frame = suite_frame(24);
        let options = ServeOptions::default();

        // One admitted permit saturates the bound; racing arrivals from
        // several threads must all shed while it is held.
        let permit = registry.admit(tight).unwrap();
        let sheds_expected = 3u64;
        std::thread::scope(|scope| {
            for _ in 0..sheds_expected {
                let registry = &registry;
                scope.spawn(move || {
                    assert!(matches!(
                        registry.admit(tight),
                        Err(RuntimeError::Shed { tenant: 0, .. })
                    ));
                });
            }
        });
        registry
            .serve_with_permit(&permit, &frame, &options)
            .unwrap();
        drop(permit);
        registry.serve(tight, &frame, &options).unwrap();
        registry.serve(roomy, &frame, &options).unwrap();

        let tight_stats = registry.stats(tight).unwrap();
        assert_eq!(
            tight_stats.frames, 2,
            "seed {seed}: sheds must not count as frames"
        );
        assert_eq!(tight_stats.sheds, sheds_expected, "seed {seed}");
        assert_eq!(
            tight_stats.queue_depth, 0,
            "seed {seed}: permits were all released"
        );
        let roomy_stats = registry.stats(roomy).unwrap();
        assert_eq!(roomy_stats.frames, 1, "seed {seed}");
        assert_eq!(roomy_stats.sheds, 0, "seed {seed}");
    });
}

/// A snapshot restore racing live serves must be atomic under every
/// seeded schedule of the `snapshot.restore` point (which sits between
/// the decode and the bank swap): every concurrent serve sees either the
/// old state (cold closed-loop) or the fully installed bank — never a
/// partial install — and the post-race engine serves warm.
#[test]
fn snapshot_restore_racing_serves_holds_under_seeded_schedules() {
    use hebs::core::{CharacteristicBank, CurveFit, HebsPolicy, PipelineConfig, DEFAULT_RANGES};
    use hebs::imaging::Histogram;
    use hebs::quality::GlobalUiqiDistortion;
    use hebs::runtime::{RecharacterizePolicy, ServingMode};

    let pipeline = PipelineConfig::default().with_measure(GlobalUiqiDistortion);
    let open_loop = |classes: usize| {
        Engine::new(
            HebsPolicy::closed_loop(pipeline.clone()),
            EngineConfig {
                workers: 2,
                cache: Some(CacheConfig::exact()),
                mode: ServingMode::OpenLoop {
                    recharacterize: RecharacterizePolicy {
                        interval: None,
                        drift_limit: None,
                        fit: CurveFit::Envelope,
                        classes,
                        ..RecharacterizePolicy::default()
                    },
                },
                ..EngineConfig::default()
            },
        )
        .unwrap()
    };

    // One canary snapshot, reused by every seeded replay.
    let canary = open_loop(2);
    let suite: Vec<GrayImage> = SipiSuite::with_size(32)
        .iter()
        .map(|(_, img)| img.clone())
        .collect();
    let histograms: Vec<Histogram> = suite.iter().map(Histogram::of).collect();
    let bank = CharacteristicBank::build(&pipeline, &histograms, &DEFAULT_RANGES, 2).unwrap();
    canary.install_bank(bank).unwrap();
    let mut snapshot = Vec::new();
    canary.snapshot_to_writer(&mut snapshot).unwrap();

    replay_seeds(|seed| {
        let engine = open_loop(2);
        let serves = 6usize;
        let barrier = std::sync::Barrier::new(serves + 1);
        std::thread::scope(|scope| {
            for frame in suite.iter().take(serves) {
                let engine = engine.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    engine.process_frame(frame).unwrap()
                });
            }
            let restorer = engine.clone();
            let bytes = &snapshot;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let report = restorer.restore_from_reader(&mut &bytes[..]).unwrap();
                assert_eq!(report.classes, 2, "seed {seed}");
            });
        });
        let stats = engine.stats();
        assert_eq!(stats.frames, serves as u64, "seed {seed}");
        assert_eq!(stats.snapshot_rejected, 0, "seed {seed}");
        assert_eq!(stats.poison_recoveries, 0, "seed {seed}");
        assert_eq!(
            engine.characteristic_classes(),
            2,
            "seed {seed}: the restored bank must be fully installed"
        );
        // Whatever the race produced, the settled engine serves warm: a
        // fresh miss costs exactly one characteristic evaluation.
        let before = engine.stats().fit_evaluations;
        let fresh = suite_frame(48);
        let result = engine.process_frame(&fresh).unwrap();
        assert!(!result.cache_hit, "seed {seed}");
        assert_eq!(
            engine.stats().fit_evaluations - before,
            1,
            "seed {seed}: post-restore serves must be open-loop"
        );
    });
}

/// Open-loop serving with concurrent traffic must keep its generation
/// bookkeeping coherent under seeded schedules of the `openloop.swap` /
/// `openloop.begin_rebuild` points: every served frame respects the
/// distortion contract and the engine's accounting reconciles.
#[test]
fn open_loop_rebuild_race_holds_under_seeded_schedules() {
    use hebs::quality::GlobalUiqiDistortion;
    use hebs::runtime::{RecharacterizePolicy, ServingMode};
    replay_seeds(|seed| {
        let engine = Engine::new(
            hebs::core::HebsPolicy::closed_loop(
                hebs::core::PipelineConfig::default().with_measure(GlobalUiqiDistortion),
            ),
            EngineConfig {
                workers: 2,
                cache: Some(CacheConfig::exact()),
                mode: ServingMode::OpenLoop {
                    recharacterize: RecharacterizePolicy {
                        interval: Some(4),
                        drift_limit: Some(2),
                        sample_period: 1,
                        sample_capacity: 8,
                        ..RecharacterizePolicy::default()
                    },
                },
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let base: Vec<GrayImage> = SipiSuite::with_size(32)
            .iter()
            .map(|(_, img)| img.clone())
            .collect();
        let frames: Vec<GrayImage> = base.iter().cycle().take(24).cloned().collect();
        let report = engine.process_batch(&frames).unwrap();
        assert_eq!(report.results.len(), frames.len(), "seed {seed}");
        for result in &report.results {
            assert!(
                result.outcome.distortion <= engine.max_distortion() + 1e-9,
                "seed {seed}: frame {} broke the distortion contract ({})",
                result.index,
                result.outcome.distortion
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.frames, frames.len() as u64, "seed {seed}");
        assert_eq!(
            stats.poison_recoveries, 0,
            "seed {seed}: no lock was poisoned"
        );
    });
}
