//! Warm-start tier: one canary characterizes, a whole fleet restores.
//!
//! ```text
//! cargo run --release --example warm_start_server
//! ```
//!
//! Open-loop serving needs a characterized bank before it pays off — and
//! characterizing from live traffic costs a recovery window of
//! closed-loop serves on *every* node. The warm-start tier moves that
//! cost to a single canary: it characterizes representative traffic,
//! serves long enough to fill its hot cache, and snapshots bank + cache
//! spill into a versioned, checksummed byte stream. Every fleet node
//! restores those bytes at boot and serves at open-loop cost — one
//! characteristic evaluation per miss, zero recharacterizations — from
//! its very first frame, replaying the canary's hottest fits as cache
//! hits. A corrupted artifact (a torn download, a bad disk) is rejected
//! with a typed error and the node simply boots cold; it never panics
//! and never installs a partial bank.

use hebs::core::{CharacteristicBank, CurveFit, HebsPolicy, PipelineConfig, DEFAULT_RANGES};
use hebs::imaging::{GrayImage, Histogram, SipiSuite};
use hebs::quality::GlobalUiqiDistortion;
use hebs::runtime::{
    CacheConfig, Engine, EngineConfig, RecharacterizePolicy, RuntimeError, ServingMode,
};

/// A fleet-node engine: open-loop with a two-class bank slot, an exact
/// cache, and no self-characterization — the bank arrives via restore.
fn fleet_node(pipeline: &PipelineConfig) -> Result<Engine, RuntimeError> {
    Engine::new(
        HebsPolicy::closed_loop(pipeline.clone()),
        EngineConfig {
            workers: 1,
            max_distortion: 0.10,
            cache: Some(CacheConfig::exact()),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    interval: None,
                    drift_limit: None,
                    fit: CurveFit::Envelope,
                    classes: 2,
                    ..RecharacterizePolicy::default()
                },
            },
            ..EngineConfig::default()
        },
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = PipelineConfig::default().with_measure(GlobalUiqiDistortion);

    // 1. The canary characterizes representative traffic offline — pure
    //    histogram work — clusters it into two content classes, and
    //    installs the fitted bank.
    let canary_traffic: Vec<GrayImage> = SipiSuite::with_size(48)
        .iter()
        .map(|(_, img)| img.clone())
        .collect();
    let histograms: Vec<Histogram> = canary_traffic.iter().map(Histogram::of).collect();
    let bank = CharacteristicBank::build(&pipeline, &histograms, &DEFAULT_RANGES, 2)?;
    let canary = fleet_node(&pipeline)?;
    canary.install_bank(bank)?;

    // 2. It serves its own traffic (filling the hot cache with fitted
    //    transforms) and snapshots bank + cache spill. In a deployment the
    //    bytes go to object storage; here a Vec stands in.
    for frame in &canary_traffic {
        canary.process_frame(frame)?;
    }
    let mut snapshot = Vec::new();
    canary.snapshot_to_writer(&mut snapshot)?;
    println!(
        "canary: characterized {} classes from {} frames, snapshot {} bytes",
        canary.characteristic_classes(),
        canary_traffic.len(),
        snapshot.len()
    );

    // 3. A fleet node boots, restores the snapshot, and is warm before
    //    its first frame: the bank installs atomically and the spilled
    //    fits re-enter its cache under fresh generations.
    let node = fleet_node(&pipeline)?;
    let report = node.restore_from_reader(&mut &snapshot[..])?;
    println!(
        "fleet node: restored {} classes (generation {}), {} cache entries re-admitted",
        report.classes, report.generation, report.cache_restored
    );

    // 4. Day-2 traffic the canary never saw: every miss costs exactly one
    //    characteristic evaluation — no bootstrap window, no closed-loop
    //    recovery serves — and replayed canary frames are cache hits.
    let day2: Vec<GrayImage> = SipiSuite::with_size(56)
        .iter()
        .map(|(_, img)| img.clone())
        .chain(canary_traffic.iter().take(4).cloned())
        .collect();
    for frame in &day2 {
        node.process_frame(frame)?;
    }
    let stats = node.stats();
    println!(
        "fleet node day 2: {} serves, {} fit evaluations over {} misses, {} hits, {} rebuilds",
        stats.frames,
        stats.fit_evaluations,
        stats.cache_misses,
        stats.cache_hits,
        stats.recharacterizations
    );

    // 5. A corrupted artifact degrades to cold-start, typed — never a
    //    panic, never a partial bank.
    let mut torn = snapshot.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x10;
    let unlucky = fleet_node(&pipeline)?;
    match unlucky.restore_from_reader(&mut &torn[..]) {
        Err(RuntimeError::Snapshot(err)) => {
            println!("torn snapshot rejected: {err}");
        }
        other => return Err(format!("expected a typed rejection, got {other:?}").into()),
    }
    println!(
        "unlucky node boots cold instead: {} classes installed, {} rejection(s) counted — \
         it will characterize from live traffic like any cold node",
        unlucky.characteristic_classes(),
        unlucky.stats().snapshot_rejected
    );
    Ok(())
}
