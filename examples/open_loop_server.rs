//! Open-loop serving: the paper's table-lookup flow at serving scale, with
//! background re-characterization and the non-blocking stream poll API.
//!
//! ```text
//! cargo run --release --example open_loop_server
//! ```
//!
//! A deployment characterizes representative traffic offline (distortion
//! versus dynamic range, Figure 7 of the paper), installs the fitted curve
//! into the engine, and then serves every cache miss with **one** fit
//! evaluation — a characteristic lookup — instead of the closed-loop
//! bisection's ~8. Three safety nets keep the distortion contract honest
//! while traffic drifts:
//!
//! 1. a per-frame drift check re-serves any over-budget open-loop fit
//!    through the closed-loop search;
//! 2. a rolling histogram sketch of recent traffic feeds a background
//!    re-characterization (every N frames and/or after enough drift), and
//!    the rebuilt curve is swapped in atomically while workers keep
//!    serving;
//! 3. every swap bumps a generation tag carried by all cache keys, so fits
//!    made under a stale curve are never replayed.

use std::time::Duration;

use hebs::core::{DistortionCharacteristic, HebsPolicy, PipelineConfig, DEFAULT_RANGES};
use hebs::imaging::{FrameSequence, Histogram, SceneKind};
use hebs::quality::GlobalUiqiDistortion;
use hebs::runtime::{
    CacheConfig, Engine, EngineConfig, RecharacterizePolicy, ServingMode, StreamPoll,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The histogram-capable global UIQI measure: open-loop fits, drift
    // rechecks and re-characterization all run in O(levels), never O(pixels).
    let pipeline = PipelineConfig::default().with_measure(GlobalUiqiDistortion);

    // 1. Characterize representative traffic offline — a few seconds of the
    //    scene the deployment expects — entirely from histograms.
    let sample_scene = FrameSequence::new(SceneKind::Static, 64, 64, 12, 7);
    let histograms: Vec<Histogram> = sample_scene
        .frames()
        .map(|frame| Histogram::of(&frame))
        .collect();
    let seed = DistortionCharacteristic::characterize_from_histograms(
        &pipeline,
        &histograms,
        &DEFAULT_RANGES,
    )?;
    println!(
        "seed characteristic: {} samples, predicted distortion at range 128 = {:.2}%",
        seed.samples().len(),
        seed.predicted_distortion(128) * 100.0
    );

    // 2. Build the open-loop engine and install the seed. The closed-loop
    //    policy stays on board as the drift fallback.
    let engine = Engine::new(
        HebsPolicy::closed_loop(pipeline),
        EngineConfig {
            workers: 0, // auto-detect
            queue_depth: 8,
            max_distortion: 0.10,
            cache: Some(CacheConfig::approximate().with_byte_budget(Some(8 << 20))),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    interval: Some(64),   // rebuild at least every 64 frames
                    drift_limit: Some(4), // ... or after 4 drift fallbacks
                    sample_period: 4,     // sketch every 4th histogram
                    ..RecharacterizePolicy::default()
                },
            },
        },
    )?;
    engine.install_characteristic(seed)?;
    println!(
        "engine up: {} workers, open-loop generation {}",
        engine.workers(),
        engine.characteristic_generation()
    );

    // 3. The live feed drifts away from the characterized traffic: the
    //    static scene the curve knows, then a fade to black it has never
    //    seen (darker histograms distort more at the same range).
    let known = FrameSequence::new(SceneKind::Static, 64, 64, 48, 7);
    let drifted = FrameSequence::new(SceneKind::FadeToBlack, 64, 64, 48, 21);
    let feed = (0..known.frame_count())
        .map(move |i| known.frame(i))
        .chain((0..drifted.frame_count()).map(move |i| drifted.frame(i)));

    // 4. Serve through the poll interface an event loop would use: never
    //    block longer than one tick on a stalled producer.
    let mut stream = engine.stream(feed);
    let mut served = 0usize;
    loop {
        match stream.next_timeout(Duration::from_millis(50)) {
            StreamPoll::Ready(result) => {
                let frame = result?;
                served += 1;
                if frame.index % 16 == 0 {
                    println!(
                        "frame {:>3}: beta {:.3}, distortion {:>5.2}%, saving {:>5.2}%, {}",
                        frame.index,
                        frame.outcome.beta,
                        frame.outcome.distortion * 100.0,
                        frame.outcome.power_saving * 100.0,
                        if frame.cache_hit {
                            "cache hit"
                        } else {
                            "fitted"
                        },
                    );
                }
            }
            // A real event loop would run timers / other sockets here.
            StreamPoll::Pending => continue,
            StreamPoll::Finished => break,
        }
    }

    // 5. The open-loop economics: ~1 evaluation per miss, drift fallbacks
    //    counted, curve rebuilt in the background when the scene changed.
    let stats = engine.stats();
    println!(
        "\nserved {served} frames, hit rate {:.0}%",
        stats.cache_hit_rate() * 100.0
    );
    println!(
        "fit evaluations: {} over {} misses ({:.2} per miss; a closed-loop engine runs ~8)",
        stats.fit_evaluations,
        stats.cache_misses,
        stats.fit_evaluations as f64 / stats.cache_misses.max(1) as f64,
    );
    println!(
        "drift: {} fallbacks, {} background re-characterizations, final generation {}",
        stats.open_loop_fallbacks,
        stats.recharacterizations,
        engine.characteristic_generation(),
    );
    Ok(())
}
