//! Photo-viewer scenario: the power saved on every image of the benchmark
//! suite at three distortion budgets — a miniature of the paper's Table 1.
//!
//! ```text
//! cargo run --release --example photo_viewer_power
//! ```

use hebs::core::{BacklightPolicy, HebsPolicy, PipelineConfig};
use hebs::imaging::SipiSuite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = SipiSuite::with_size(128);
    let policy = HebsPolicy::closed_loop(PipelineConfig::default());
    let budgets = [0.05, 0.10, 0.20];

    println!("Power saving (%) per image and distortion budget");
    println!("{:<12} {:>8} {:>8} {:>8}", "image", "5%", "10%", "20%");
    let mut totals = [0.0f64; 3];
    for (id, image) in suite.iter() {
        let mut row = Vec::with_capacity(budgets.len());
        for (i, &budget) in budgets.iter().enumerate() {
            let outcome = policy.optimize(image, budget)?;
            totals[i] += outcome.power_saving;
            row.push(outcome.power_saving * 100.0);
        }
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2}",
            id.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    let n = suite.len() as f64;
    println!(
        "{:<12} {:>8.2} {:>8.2} {:>8.2}",
        "Average",
        totals[0] / n * 100.0,
        totals[1] / n * 100.0,
        totals[2] / n * 100.0
    );
    println!(
        "\n(The paper reports averages of 45.9 / 56.2 / 64.4 % on the real SIPI photographs.)"
    );
    Ok(())
}
