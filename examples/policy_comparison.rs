//! Head-to-head comparison of HEBS against the DLS and CBCS baselines at the
//! same distortion budget.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use hebs::core::{BacklightPolicy, CbcsPolicy, DlsPolicy, DlsVariant, HebsPolicy, PipelineConfig};
use hebs::imaging::{SipiImage, SipiSuite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = 0.10;
    let suite = SipiSuite::with_size(128);
    let sample: Vec<SipiImage> = vec![
        SipiImage::Lena,
        SipiImage::Peppers,
        SipiImage::Baboon,
        SipiImage::Splash,
        SipiImage::Trees,
        SipiImage::Testpat,
    ];

    let policies: Vec<Box<dyn BacklightPolicy>> = vec![
        Box::new(HebsPolicy::closed_loop(PipelineConfig::default())),
        Box::new(CbcsPolicy::new()),
        Box::new(DlsPolicy::new(DlsVariant::ContrastEnhancement)),
        Box::new(DlsPolicy::new(DlsVariant::BrightnessCompensation)),
    ];

    println!(
        "Power saving (%) at a {:.0}% distortion budget",
        budget * 100.0
    );
    print!("{:<12}", "image");
    for policy in &policies {
        print!(" {:>16}", policy.name());
    }
    println!();

    let mut totals = vec![0.0f64; policies.len()];
    for id in &sample {
        let image = suite.image(*id).expect("suite contains all ids");
        print!("{:<12}", id.name());
        for (i, policy) in policies.iter().enumerate() {
            let outcome = policy.optimize(image, budget)?;
            totals[i] += outcome.power_saving;
            print!(" {:>16.2}", outcome.power_saving * 100.0);
        }
        println!();
    }
    print!("{:<12}", "Average");
    for total in &totals {
        print!(" {:>16.2}", total / sample.len() as f64 * 100.0);
    }
    println!();
    println!("\nExpected ordering (as in the paper): HEBS >= CBCS >= DLS at equal distortion.");
    Ok(())
}
