//! Video-playback scenario: per-frame backlight scaling with temporal
//! smoothing, on synthetic sequences with different temporal behaviours.
//!
//! ```text
//! cargo run --release --example video_playback
//! ```

use hebs::core::{HebsPolicy, PipelineConfig, VideoPipeline};
use hebs::imaging::{FrameSequence, SceneKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const FRAMES: usize = 12;
    const SIZE: u32 = 128;

    println!("Per-scene results ({FRAMES} frames of {SIZE}x{SIZE}, 10% distortion budget)");
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>16}",
        "scene", "saving (%)", "distortion", "max beta step", "bus bits/pixel"
    );

    for kind in SceneKind::ALL {
        let sequence = FrameSequence::new(kind, SIZE, SIZE, FRAMES, 42);
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        // Limit backlight changes to 5% per frame to avoid visible flicker.
        let pipeline = VideoPipeline::new(policy, 0.05, 0.10)?;
        let report = pipeline.process(sequence.frames())?;
        let bus_bits = report.controller.bus_transitions as f64
            / (report.controller.frames as f64 * f64::from(SIZE) * f64::from(SIZE));
        println!(
            "{:<16} {:>12.2} {:>12.3} {:>14.3} {:>16.2}",
            kind.to_string(),
            report.mean_power_saving() * 100.0,
            report.mean_distortion(),
            report.max_backlight_step(),
            bus_bits
        );
    }

    println!("\nThe scene-cut sequence shows the effect of the 0.05/frame backlight slew limit:");
    println!("the backlight walks to the new level over several frames instead of jumping.");
    Ok(())
}
