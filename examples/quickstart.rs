//! Quickstart: run HEBS on one image and print what the display would do.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hebs::core::{BacklightPolicy, HebsPolicy, PipelineConfig};
use hebs::imaging::{io, Histogram, SipiImage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Get an image. Any 8-bit grayscale image works; here we use the
    //    synthetic stand-in for the classic "Lena" benchmark.
    let image = SipiImage::Lena.generate(256);
    let histogram = Histogram::of(&image);
    println!("input image: {}x{} pixels", image.width(), image.height());
    println!(
        "  histogram: dynamic range {}, entropy {:.2} bits, mean level {:.1}",
        histogram.dynamic_range(),
        histogram.entropy(),
        histogram.mean()
    );

    // 2. Build the HEBS policy. The closed-loop variant searches the target
    //    dynamic range per image so the distortion bound is met exactly.
    let policy = HebsPolicy::closed_loop(PipelineConfig::default());

    // 3. Ask for the most aggressive backlight dimming that keeps the
    //    perceived distortion at or below 10 %.
    let outcome = policy.optimize(&image, 0.10)?;

    println!("\nHEBS result (max distortion 10%):");
    println!("  backlight factor beta : {:.3}", outcome.beta);
    if let Some(range) = outcome.dynamic_range {
        println!("  target dynamic range  : {range} levels");
    }
    println!(
        "  measured distortion   : {:.2} %",
        outcome.distortion * 100.0
    );
    println!(
        "  power saving          : {:.2} %",
        outcome.power_saving * 100.0
    );
    println!(
        "  power breakdown       : CCFL {:.3} + panel {:.3} + controller {:.3} = {:.3}",
        outcome.power.ccfl,
        outcome.power.panel,
        outcome.power.controller,
        outcome.power.total()
    );

    // 4. Save the original and the displayed (backlight-scaled) image so the
    //    visual effect can be inspected with any PGM viewer.
    let out_dir = std::env::temp_dir().join("hebs-quickstart");
    std::fs::create_dir_all(&out_dir)?;
    io::save_pgm(&image, out_dir.join("original.pgm"))?;
    io::save_pgm(&outcome.displayed, out_dir.join("displayed.pgm"))?;
    println!(
        "\nwrote original.pgm and displayed.pgm to {}",
        out_dir.display()
    );
    Ok(())
}
