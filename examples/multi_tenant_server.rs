//! Multi-tenant serving: two tenants with their own distortion budgets
//! sharing one engine fleet and one transformation cache, with
//! deadline-aware serving and admission control.
//!
//! ```text
//! cargo run --release --example multi_tenant_server
//! ```
//!
//! A display server rarely serves one stream: picture an interactive UI
//! surface with a strict 5% distortion budget next to a video overlay
//! that tolerates 20%. The [`hebs::runtime::TenantRegistry`] gives each
//! tenant its own budget, serving mode, curve generations and stats while
//! they share one cache — every cache key carries the tenant id, so a fit
//! made under one tenant's budget is never replayed for another, and the
//! cache's byte budget is partitioned by per-tenant weights so a bursty
//! neighbour cannot evict everyone else.
//!
//! Three mechanisms are demonstrated:
//!
//! 1. **routing** — the same frames served under each tenant's own budget
//!    produce different backlight dimming;
//! 2. **deadlines** — a past-due open-loop serve skips the closed-loop
//!    drift recheck and degrades to the installed curve (one fit
//!    evaluation, counted in `deadline_degraded`) instead of blowing the
//!    latency budget;
//! 3. **admission control** — a bounded queue sheds the newest arrivals
//!    of an overloaded tenant with a typed error instead of letting the
//!    backlog grow without bound.

use std::time::{Duration, Instant};

use hebs::core::{CharacterizationSample, DistortionCharacteristic, HebsPolicy, PipelineConfig};
use hebs::imaging::synthetic;
use hebs::quality::GlobalUiqiDistortion;
use hebs::runtime::{
    CacheConfig, RecharacterizePolicy, RuntimeError, ServeOptions, ServingMode, TenantRegistry,
    TenantSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline =
        || HebsPolicy::closed_loop(PipelineConfig::default().with_measure(GlobalUiqiDistortion));

    // 1. Two tenants, one registry: the UI surface gets a strict budget,
    //    triple cache weight and a generous admission bound; the video
    //    overlay gets a loose budget, an open-loop engine and a tight
    //    bound (it is the tenant we will overload).
    let registry = TenantRegistry::builder()
        .with_cache(CacheConfig::exact().with_byte_budget(Some(8 << 20)))
        .tenant(
            pipeline(),
            TenantSpec::named("ui")
                .with_budget(0.05)
                .with_cache_weight(3)
                .with_queue_limit(64),
        )
        .tenant(
            pipeline(),
            TenantSpec::named("video")
                .with_budget(0.20)
                .with_mode(ServingMode::OpenLoop {
                    recharacterize: RecharacterizePolicy::default(),
                })
                .with_cache_weight(1)
                .with_queue_limit(4),
        )
        .build()?;
    let ui = registry.id_of("ui").expect("registered");
    let video = registry.id_of("video").expect("registered");

    // 2. Routing: the same frames dim further under the looser budget.
    let frames: Vec<_> = (0..8)
        .map(|i| synthetic::portrait(64, 64, 40 + i))
        .collect();
    let (mut ui_saving, mut video_saving) = (0.0, 0.0);
    for frame in &frames {
        ui_saving += registry
            .serve(ui, frame, &ServeOptions::default())?
            .outcome
            .power_saving;
        video_saving += registry
            .serve(video, frame, &ServeOptions::default())?
            .outcome
            .power_saving;
    }
    println!(
        "routing: ui (5% budget) saved {:.1}% backlight, video (20% budget) saved {:.1}%",
        ui_saving / frames.len() as f64 * 100.0,
        video_saving / frames.len() as f64 * 100.0,
    );

    // 3. Deadlines: install a stale curve into the video tenant (it
    //    promises ≈ 0 distortion, so every lookup drifts over budget) and
    //    serve one frame whose deadline has already passed. Instead of
    //    paying the closed-loop search, the engine serves the installed
    //    curve and counts the degrade.
    let stale = DistortionCharacteristic::from_samples(
        (0..6)
            .map(|i| CharacterizationSample {
                image: format!("stale{i}"),
                dynamic_range: 40 * (i + 1),
                distortion: 0.0,
                power_saving: 0.9,
            })
            .collect(),
    )?;
    registry.engine(video)?.install_characteristic(stale)?;
    let past_due = ServeOptions::default().with_deadline(Instant::now() - Duration::from_millis(5));
    let degraded = registry.serve(video, &frames[0], &past_due)?;
    let on_time = registry.serve(video, &frames[1], &ServeOptions::default())?;
    println!(
        "deadlines: past-due serve degraded to the curve (distortion {:.1}%), \
         on-time serve fell back to the search (distortion {:.1}%), degraded count {}",
        degraded.outcome.distortion * 100.0,
        on_time.outcome.distortion * 100.0,
        registry.stats(video)?.deadline_degraded,
    );

    // 4. Admission control: a burst of permits beyond the video tenant's
    //    bound is shed with a typed error; the UI tenant is untouched.
    let mut permits = Vec::new();
    let mut sheds = 0;
    for _ in 0..12 {
        match registry.admit(video) {
            Ok(permit) => permits.push(permit),
            Err(RuntimeError::Shed { queue_depth, .. }) => {
                sheds += 1;
                if sheds == 1 {
                    println!("admission: video shed an arrival at queue depth {queue_depth}");
                }
            }
            Err(other) => return Err(other.into()),
        }
    }
    println!(
        "admission: {} of 12 burst arrivals shed (bound 4); ui sheds: {}",
        sheds,
        registry.stats(ui)?.sheds,
    );
    drop(permits); // releasing the permits reopens admission
    assert!(registry.admit(video).is_ok());
    println!(
        "admission: queue drained, video accepts again (sheds counted: {})",
        registry.stats(video)?.sheds,
    );
    Ok(())
}
