//! Streaming server simulation: serve a live video feed through the
//! concurrent, cache-accelerated runtime engine.
//!
//! ```text
//! cargo run --release --example streaming_server
//! ```
//!
//! A producer generates frames (here a synthetic noisy static scene followed
//! by a scene cut, standing in for a camera or decoder) and the engine pulls
//! them through a bounded queue: when the worker pool falls behind, the
//! producer blocks instead of queueing unboundedly — exactly how a real
//! ingestion pipeline applies backpressure. Results come back in frame
//! order with per-frame latency and cache statistics.

use hebs::core::{HebsPolicy, PipelineConfig};
use hebs::imaging::{FrameSequence, SceneKind};
use hebs::runtime::{CacheConfig, Engine, EngineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the engine: pooled workers, bounded queues, and the
    //    signature-keyed cache so near-identical consecutive frames reuse
    //    the fitted transformation. The cache is bounded in bytes (not just
    //    entries) so a production deployment can size it to a memory
    //    budget; concurrent misses on one key collapse into a single fit.
    let policy = HebsPolicy::closed_loop(PipelineConfig::default());
    let config = EngineConfig {
        workers: 0, // auto-detect
        queue_depth: 8,
        max_distortion: 0.10,
        cache: Some(CacheConfig::approximate().with_byte_budget(Some(8 << 20))),
        ..EngineConfig::default()
    };
    let engine = Engine::new(policy, config)?;
    println!(
        "engine up: {} workers, 10% distortion budget, approximate cache (8 MiB)",
        engine.workers()
    );

    // 2. The "camera": 48 noisy static frames, then a hard cut (64 frames
    //    total). The iterator is lazy — each frame is generated on demand as
    //    the bounded queue drains, so a saturated pool throttles the
    //    producer itself, exactly as with a real capture device.
    let static_scene = FrameSequence::new(SceneKind::Static, 64, 64, 48, 7);
    let cut_scene = FrameSequence::new(SceneKind::SceneCut, 64, 64, 16, 9);
    let feed = (0..static_scene.frame_count())
        .map(move |i| static_scene.frame(i))
        .chain((0..cut_scene.frame_count()).map(move |i| cut_scene.frame(i)));

    // 3. Serve the stream; results arrive in input order.
    let mut served = 0usize;
    let mut hits = 0usize;
    for result in engine.stream(feed) {
        let frame = result?;
        served += 1;
        hits += usize::from(frame.cache_hit);
        if frame.index % 16 == 0 {
            println!(
                "frame {:>3}: beta {:.3}, distortion {:>5.2}%, saving {:>5.2}%, {} ({} us)",
                frame.index,
                frame.outcome.beta,
                frame.outcome.distortion * 100.0,
                frame.outcome.power_saving * 100.0,
                if frame.cache_hit {
                    "cache hit "
                } else {
                    "full fit  "
                },
                frame.latency.as_micros(),
            );
        }
    }

    // 4. Session summary, including the v2 cache accounting: how many
    //    misses were coalesced onto another worker's in-flight fit, how
    //    many cached candidates failed the serve-time distortion recheck,
    //    and how much memory the cache holds resident.
    let stats = engine.stats();
    println!("\nserved {served} frames, {hits} cache hits");
    println!(
        "engine totals: {} frames, hit rate {:.0}%, mean latency {:.2} ms",
        stats.frames,
        stats.cache_hit_rate() * 100.0,
        stats.mean_latency().as_secs_f64() * 1e3,
    );
    println!(
        "cache: {} coalesced misses, {} rejected hits, {:.1} KiB resident",
        stats.cache_coalesced,
        stats.cache_rejected,
        stats.cache_bytes as f64 / 1024.0,
    );
    Ok(())
}
