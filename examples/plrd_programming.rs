//! Hardware view: how a HEBS transformation becomes reference voltages in
//! the hierarchical Programmable LCD Reference Driver.
//!
//! ```text
//! cargo run --release --example plrd_programming
//! ```

use hebs::core::ghe::{equalize, TargetRange};
use hebs::display::plrd::{ConventionalPlrd, HierarchicalPlrd};
use hebs::imaging::{Histogram, SipiImage};
use hebs::transform::{coarsen, SingleBandSpreading};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = SipiImage::Peppers.generate(128);
    let histogram = Histogram::of(&image);

    // Target: compress the image to 140 grayscale levels so the backlight
    // can be dimmed to beta = g_max / 255.
    let target = TargetRange::from_span(140)?;
    let beta = target.backlight_factor();
    println!("target dynamic range 140 -> backlight factor beta = {beta:.3}");

    // Exact GHE transformation: 255 linear segments.
    let ghe = equalize(&histogram, target)?;
    println!(
        "exact GHE transform: {} segments (too many for hardware)",
        ghe.transform.segment_count()
    );

    // Coarsen to the driver's segment budget with the PLC dynamic program.
    let driver = HierarchicalPlrd::new(8, 10)?;
    let coarse = coarsen(&ghe.transform, driver.max_segments())?;
    println!(
        "after piecewise-linear coarsening: {} segments, squared error {:.6}",
        coarse.curve.segment_count(),
        coarse.squared_error
    );

    // Program the hierarchical driver (Eq. 10: V_i = Vdd * Y_qi / beta).
    let programmed = driver.program(&coarse.curve, beta)?;
    println!("\nhierarchical PLRD programming:");
    for (i, v) in programmed.reference_voltages.iter().enumerate() {
        println!("  V_{i} = {:.4} * Vdd", v);
    }
    println!(
        "  realization RMS error vs requested curve: {:.5}",
        programmed.realization_error
    );

    // For contrast: the conventional driver can only realize a single band.
    let conventional = ConventionalPlrd::default();
    let band = SingleBandSpreading::new(0.15, 0.15 + beta, beta)?;
    let conv = conventional.program(&band)?;
    println!(
        "\nconventional PLRD (CBCS hardware), single band [0.15, {:.2}]:",
        0.15 + beta
    );
    println!(
        "  realization RMS error vs its own request: {:.5}",
        conv.realization_error
    );
    println!(
        "  but it cannot express the multi-slope HEBS curve at all — that is the\n  hardware argument for the hierarchical divider."
    );
    Ok(())
}
